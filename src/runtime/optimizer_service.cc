#include "runtime/optimizer_service.hh"

#include <chrono>

#include "runtime/adore.hh"

namespace adore
{

OptimizerService::OptimizerService(AdoreRuntime &rt)
    : rt_(rt),
      sampleQueue_(rt.config_.sampleQueueCapacity),
      tickQueue_(256),
      commitReqQueue_(32),
      commitAckQueue_(64),
      unpatchReqQueue_(32),
      unpatchAckQueue_(64)
{
}

OptimizerService::~OptimizerService()
{
    shutdown();
}

bool
OptimizerService::freeRunning() const
{
    return rt_.config_.mode == OptimizerMode::FreeRunning;
}

std::uint64_t
OptimizerService::monotonicNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void
OptimizerService::start()
{
    if (running_)
        return;
    {
        std::lock_guard<std::mutex> g(wakeMutex_);
        stop_ = false;
    }
    running_ = true;
    worker_ = std::thread([this] { run(); });
}

void
OptimizerService::shutdown()
{
    if (worker_.joinable()) {
        {
            std::lock_guard<std::mutex> g(wakeMutex_);
            stop_ = true;
            wakeCv_.notify_all();
        }
        worker_.join();
    }
    running_ = false;

    // Single-threaded from here (the join is the happens-before edge):
    // settle the in-flight protocol so the stats read consistently.
    // Acks the worker never consumed are applied — the patches they
    // describe really happened.  Requests it queued but main never
    // applied are discarded and counted: the run is over, patching now
    // would mutate code nothing will execute.
    drainAcks();
    CommitRequest creq;
    while (commitReqQueue_.tryPop(creq)) {
        for (const CommitPlanItem &item : creq.items)
            commitPending_.erase(item.trace.startAddr);
        ++requestsDropped_;
    }
    UnpatchRequest ureq;
    while (unpatchReqQueue_.tryPop(ureq)) {
        for (Addr h : ureq.heads)
            unpatchPending_.erase(h);
        ++requestsDropped_;
    }
    std::vector<Sample> batch;
    while (sampleQueue_.tryPop(batch)) {
    }
    TickMsg tick;
    while (tickQueue_.tryPop(tick)) {
    }
}

// --------------------------------------------------------------------
// Worker thread
// --------------------------------------------------------------------

void
OptimizerService::run()
{
    std::unique_lock<std::mutex> lk(wakeMutex_);
    if (freeRunning())
        runFree(lk);
    else
        runBarrier(lk);
}

void
OptimizerService::runBarrier(std::unique_lock<std::mutex> &lk)
{
    // The poll body runs here, on the worker, while the main thread
    // blocks in poll().  Holding wakeMutex_ across the body and the
    // condvar handshake orders every access in both directions, so the
    // execution is bit-identical to Synchronous mode.
    for (;;) {
        wakeCv_.wait(lk, [this] { return stop_ || pollRequested_; });
        if (pollRequested_) {
            drainSamples();
            noteQueueDrops();
            rt_.onPoll(pollNow_);
            ++barrierPolls_;
            pollRequested_ = false;
            doneCv_.notify_all();
            continue;  // re-evaluate stop_ after finishing the poll
        }
        break;  // stop_ with no poll pending
    }
}

void
OptimizerService::runFree(std::unique_lock<std::mutex> &lk)
{
    for (;;) {
        wakeCv_.wait(lk, [this] {
            return stop_ || !tickQueue_.empty() ||
                   !commitAckQueue_.empty() || !unpatchAckQueue_.empty();
        });
        bool stopping = stop_;
        lk.unlock();

        drainAcks();
        TickMsg tick;
        while (tickQueue_.tryPop(tick)) {
            drainAcks();
            processTick(tick);
        }

        lk.lock();
        if (stopping && tickQueue_.empty())
            break;
    }
}

void
OptimizerService::drainSamples()
{
    std::vector<Sample> window;
    while (sampleQueue_.tryPop(window))
        rt_.ueb_.pushWindow(std::move(window));
}

void
OptimizerService::noteQueueDrops()
{
    std::uint64_t seen = dropCounter_.load(std::memory_order_acquire);
    if (seen == lastDropSeen_)
        return;
    std::uint64_t delta = seen - lastDropSeen_;
    lastDropSeen_ = seen;
    if (rt_.events_) {
        rt_.events_->emit(observe::OptimizerQueueEvent{
            delta, static_cast<std::uint64_t>(sampleQueue_.size())});
    }
}

void
OptimizerService::processTick(const TickMsg &tick)
{
    if (rt_.events_)
        rt_.events_->setNow(tick.now);
    if (rt_.guardrails_)
        rt_.guardrails_->beginPoll();

    drainSamples();
    noteQueueDrops();
    rt_.consumeWindows(tick.now);

    if (tick.haveFaults && rt_.events_) {
        // The tick snapshots the main-owned channels; merge in the
        // worker-owned ones (patch failures, optimizer stalls), which
        // are drawn on this thread and safe to read live.
        fault::FaultStats fs = tick.mainFaults;
        const fault::FaultStats &live = rt_.config_.faultPlan->stats();
        fs.patchesFailed = live.patchesFailed;
        fs.optimizerStalls = live.optimizerStalls;
        rt_.emitFaultDeltas(fs);
    }
    if (rt_.guardrails_) {
        rt_.finishPollGuardrails(tick.prefetchIssuedDelta,
                                 tick.prefetchDroppedDelta,
                                 tick.hwIssuedDelta,
                                 tick.hwDroppedDelta);
    }
    ++ticksProcessed_;
}

void
OptimizerService::drainAcks()
{
    CommitAck cack;
    while (commitAckQueue_.tryPop(cack))
        applyCommitAck(cack);
    UnpatchAck uack;
    while (unpatchAckQueue_.tryPop(uack))
        applyUnpatchAck(uack);
}

void
OptimizerService::applyCommitAck(const CommitAck &ack)
{
    AdoreRuntime::OptimizedBatch batch;
    batch.cpiBefore = ack.cpiBefore;
    for (const CommitAckItem &item : ack.items) {
        commitPending_.erase(item.head);
        switch (item.outcome) {
          case CommitOutcome::Patched:
            shadowPatched_.insert(item.head);
            batch.traces.push_back(
                {item.head, item.base,
                 item.base + item.totalBundles * isa::bundleBytes});
            ++rt_.stats_.tracesPatched;
            if (rt_.events_) {
                rt_.events_->emit(observe::TracePatchedEvent{
                    item.head, item.base, item.bodyBundles,
                    item.initBundles});
            }
            break;
          case CommitOutcome::PoolFull:
            ++rt_.stats_.tracesRejectedPoolFull;
            if (rt_.guardrails_) {
                rt_.guardrails_->notePoolExhausted(item.head);
            } else if (rt_.events_) {
                rt_.events_->emit(observe::GuardrailEvent{
                    "pool-exhausted", item.head,
                    static_cast<std::uint64_t>(item.totalBundles)});
            }
            break;
          case CommitOutcome::Stale:
            ++rt_.stats_.tracesCommitStale;
            break;
        }
    }
    if (!batch.traces.empty()) {
        ++rt_.stats_.phasesOptimized;
        batch.patchedCount = batch.traces.size();
        rt_.batches_.push_back(std::move(batch));
    }
}

void
OptimizerService::applyUnpatchAck(const UnpatchAck &ack)
{
    AdoreRuntime::OptimizedBatch *batch =
        ack.batchIndex < rt_.batches_.size() ? &rt_.batches_[ack.batchIndex]
                                             : nullptr;
    std::uint64_t done = 0;
    for (std::size_t i = 0; i < ack.heads.size(); ++i) {
        Addr head = ack.heads[i];
        unpatchPending_.erase(head);
        if (!ack.done[i])
            continue;
        ++done;
        shadowPatched_.erase(head);
        ++rt_.stats_.tracesUnpatched;
        if (rt_.events_)
            rt_.events_->emit(observe::TraceRevertedEvent{head});
        if (ack.blacklist || !rt_.guardrails_)
            rt_.blacklist_.insert(head);
        else
            rt_.guardrails_->noteTraceReverted(head);
        if (batch && batch->patchedCount > 0)
            --batch->patchedCount;
    }
    if (rt_.guardrails_ && !ack.heads.empty()) {
        if (ack.kind == UnpatchKind::Staged && done)
            rt_.guardrails_->noteStagedRevert(ack.heads.front());
        else if (ack.kind == UnpatchKind::Full)
            rt_.guardrails_->noteFullRevert(ack.heads.front(), done);
    }
    // Legacy reverts mark the batch at enqueue (revertBatch); the staged
    // paths complete it here, when the last patched head goes.
    if (ack.kind != UnpatchKind::Legacy && batch &&
        batch->patchedCount == 0 && !batch->reverted) {
        batch->reverted = true;
        ++rt_.stats_.phasesReverted;
    }
}

bool
OptimizerService::shadowPatched(Addr head) const
{
    return shadowPatched_.count(head) != 0 ||
           commitPending_.count(head) != 0;
}

bool
OptimizerService::shadowRevertible(Addr head) const
{
    return shadowPatched_.count(head) != 0 &&
           unpatchPending_.count(head) == 0;
}

void
OptimizerService::requestCommit(double cpi_before,
                                std::vector<CommitPlanItem> items)
{
    CommitRequest req;
    req.token = ++tokenCounter_;
    req.cpiBefore = cpi_before;
    req.epoch = rt_.cpu_.code().patchEpoch();
    for (const CommitPlanItem &item : items)
        commitPending_.insert(item.trace.startAddr);
    req.items = std::move(items);
    if (!commitReqQueue_.tryPush(std::move(req))) {
        // tryPush leaves the value untouched on failure: roll back the
        // pending marks so the heads can be retried on a later phase.
        for (const CommitPlanItem &item : req.items)
            commitPending_.erase(item.trace.startAddr);
        ++requestsDropped_;
    }
}

void
OptimizerService::requestUnpatch(std::size_t batch_index,
                                 std::vector<Addr> heads, bool blacklist,
                                 UnpatchKind kind)
{
    UnpatchRequest req;
    req.token = ++tokenCounter_;
    req.batchIndex = batch_index;
    req.blacklist = blacklist;
    req.kind = kind;
    for (Addr h : heads)
        unpatchPending_.insert(h);
    req.heads = std::move(heads);
    if (!unpatchReqQueue_.tryPush(std::move(req))) {
        for (Addr h : req.heads)
            unpatchPending_.erase(h);
        ++requestsDropped_;
    }
}

void
OptimizerService::requestDoubleWindow()
{
    doubleWindowRequests_.fetch_add(1, std::memory_order_release);
}

void
OptimizerService::publishSamplingInterval(Cycle interval)
{
    samplingIntervalWanted_.store(interval, std::memory_order_release);
}

void
OptimizerService::beginPhase()
{
    phaseSeqLocal_ = phaseSeq_.fetch_add(1, std::memory_order_acq_rel) + 1;
    phaseStartNs_.store(monotonicNs(), std::memory_order_release);
}

void
OptimizerService::endPhase()
{
    phaseStartNs_.store(0, std::memory_order_release);
}

bool
OptimizerService::cancelled() const
{
    return cancelSeq_.load(std::memory_order_acquire) == phaseSeqLocal_;
}

std::unique_lock<std::mutex>
OptimizerService::lockPatches()
{
    return std::unique_lock<std::mutex>(patchMutex_);
}

// --------------------------------------------------------------------
// Main thread
// --------------------------------------------------------------------

bool
OptimizerService::enqueueBatch(const std::vector<Sample> &ssb)
{
    if (sampleQueue_.tryPush(ssb)) {
        ++batchesEnqueued_;
        return true;
    }
    // Consumer behind: the caller (Sampler) accounts the drop on its
    // side; this counter feeds the worker's OptimizerQueueEvent.
    dropCounter_.fetch_add(1, std::memory_order_release);
    return false;
}

void
OptimizerService::poll(Cycle now)
{
    if (!running_)
        return;

    if (!freeRunning()) {
        // Barrier: hand the poll to the worker and wait until it is
        // done.  The two condvar edges order every access both ways.
        std::unique_lock<std::mutex> lk(wakeMutex_);
        pollNow_ = now;
        pollRequested_ = true;
        wakeCv_.notify_all();
        doneCv_.wait(lk, [this] { return !pollRequested_; });
        return;
    }

    // Free-running: publish this poll's observations as a tick, apply
    // whatever the worker asked for, and run the host watchdog.
    TickMsg tick;
    tick.now = now;
    const auto &mem = rt_.cpu_.caches().stats();
    pendingIssuedDelta_ += mem.prefetchesIssued - lastPrefIssued_;
    pendingDroppedDelta_ += mem.prefetchesDropped - lastPrefDropped_;
    lastPrefIssued_ = mem.prefetchesIssued;
    lastPrefDropped_ = mem.prefetchesDropped;
    tick.prefetchIssuedDelta = pendingIssuedDelta_;
    tick.prefetchDroppedDelta = pendingDroppedDelta_;
    if (const HwPrefetchEngine *hw = rt_.cpu_.caches().hwPrefetch()) {
        // The engine is main-thread-owned; snapshot its issue/drop
        // counters here so the worker's guardrail arbitration never
        // reads them live.
        const HwPrefetchStats &hs = hw->stats();
        pendingHwIssuedDelta_ += hs.issued() - lastHwIssued_;
        pendingHwDroppedDelta_ += hs.dropped() - lastHwDropped_;
        lastHwIssued_ = hs.issued();
        lastHwDropped_ = hs.dropped();
        tick.hwIssuedDelta = pendingHwIssuedDelta_;
        tick.hwDroppedDelta = pendingHwDroppedDelta_;
    }
    if (rt_.config_.faultPlan) {
        // Copy only the main-owned channels field by field: the worker
        // updates its own channels (patch/stall) concurrently and the
        // snapshot must not touch those locations.
        tick.haveFaults = true;
        const fault::FaultStats &fs = rt_.config_.faultPlan->stats();
        tick.mainFaults.batchesDropped = fs.batchesDropped;
        tick.mainFaults.batchesDuplicated = fs.batchesDuplicated;
        tick.mainFaults.dearAliased = fs.dearAliased;
        tick.mainFaults.countersJittered = fs.countersJittered;
        tick.mainFaults.btbCorrupted = fs.btbCorrupted;
        tick.mainFaults.memFillsJittered = fs.memFillsJittered;
        tick.mainFaults.busSqueezes = fs.busSqueezes;
    }
    if (tickQueue_.tryPush(std::move(tick))) {
        pendingIssuedDelta_ = 0;
        pendingDroppedDelta_ = 0;
        pendingHwIssuedDelta_ = 0;
        pendingHwDroppedDelta_ = 0;
    } else {
        ++ticksDropped_;  // deltas carry over to the next tick
    }

    applyRequests();
    applySamplerMailbox();
    watchdogPoll();

    {
        std::lock_guard<std::mutex> g(wakeMutex_);
        wakeCv_.notify_all();
    }
}

void
OptimizerService::applyRequests()
{
    if (commitReqQueue_.empty() && unpatchReqQueue_.empty())
        return;
    // The poll hook is a safe point: no bundle is mid-execution, so
    // patching (and the pool reallocation inside it) cannot invalidate
    // a pointer the interpreter still holds.  The mutex excludes the
    // worker's code-image reads (trace selection).
    std::lock_guard<std::mutex> g(patchMutex_);
    CodeImage &code = rt_.cpu_.code();

    CommitRequest creq;
    while (commitReqQueue_.tryPop(creq)) {
        if (code.patchEpoch() != creq.epoch)
            ++epochStale_;  // raced a patch; per-head checks decide
        CommitAck ack;
        ack.token = creq.token;
        ack.cpiBefore = creq.cpiBefore;
        ack.items.reserve(creq.items.size());
        for (CommitPlanItem &item : creq.items) {
            CommitAckItem out;
            out.head = item.trace.startAddr;
            out.bodyBundles =
                static_cast<std::uint32_t>(item.trace.bundles.size());
            out.initBundles =
                static_cast<std::uint32_t>(item.initBundles.size());
            out.totalBundles =
                item.initBundles.size() + item.trace.bundles.size() + 1;
            if (code.isPatched(item.trace.startAddr)) {
                out.outcome = CommitOutcome::Stale;
                ++commitsStale_;
            } else {
                Addr base =
                    rt_.writeTraceToPool(item.trace, item.initBundles);
                if (base == CodeImage::badAddr) {
                    out.outcome = CommitOutcome::PoolFull;
                } else {
                    out.outcome = CommitOutcome::Patched;
                    out.base = base;
                    rt_.cpu_.chargeCycles(rt_.config_.patchCyclesPerTrace);
                    ++commitsApplied_;
                }
            }
            ack.items.push_back(out);
        }
        if (!commitAckQueue_.tryPush(std::move(ack)))
            ++acksLost_;
    }

    UnpatchRequest ureq;
    while (unpatchReqQueue_.tryPop(ureq)) {
        UnpatchAck ack;
        ack.token = ureq.token;
        ack.batchIndex = ureq.batchIndex;
        ack.blacklist = ureq.blacklist;
        ack.kind = ureq.kind;
        ack.heads = std::move(ureq.heads);
        ack.done.assign(ack.heads.size(), false);
        for (std::size_t i = 0; i < ack.heads.size(); ++i) {
            if (!code.isPatched(ack.heads[i]))
                continue;
            code.unpatch(ack.heads[i]);
            rt_.cpu_.chargeCycles(rt_.config_.patchCyclesPerTrace);
            ack.done[i] = true;
        }
        if (!unpatchAckQueue_.tryPush(std::move(ack)))
            ++acksLost_;
    }
}

void
OptimizerService::applySamplerMailbox()
{
    std::uint64_t want =
        doubleWindowRequests_.load(std::memory_order_acquire);
    while (appliedDoubleWindows_ < want) {
        rt_.sampler_.doubleWindow();
        ++appliedDoubleWindows_;
    }
    Cycle interval = samplingIntervalWanted_.load(std::memory_order_acquire);
    if (interval && rt_.sampler_.interval() != interval)
        rt_.sampler_.setInterval(interval);
}

void
OptimizerService::watchdogPoll()
{
    std::uint64_t seq = phaseSeq_.load(std::memory_order_acquire);
    std::uint64_t start = phaseStartNs_.load(std::memory_order_acquire);
    if (!start)
        return;  // no phase in flight
    if (phaseSeq_.load(std::memory_order_acquire) != seq)
        return;  // phase boundary raced the read; recheck next poll
    if (cancelSeq_.load(std::memory_order_acquire) == seq)
        return;  // already cancelled
    if (monotonicNs() - start <= rt_.config_.watchdogDeadlineNs)
        return;
    cancelSeq_.store(seq, std::memory_order_release);
    hostCancels_.fetch_add(1, std::memory_order_relaxed);
}

OptimizerServiceStats
OptimizerService::statsSnapshot() const
{
    OptimizerServiceStats s;
    s.batchesEnqueued = batchesEnqueued_;
    s.batchesDropped = dropCounter_.load(std::memory_order_acquire);
    s.ticksDropped = ticksDropped_;
    s.requestsDropped = requestsDropped_;
    s.acksLost = acksLost_;
    s.ticksProcessed = ticksProcessed_;
    s.barrierPolls = barrierPolls_;
    s.commitsApplied = commitsApplied_;
    s.commitsStale = commitsStale_;
    s.epochStaleRequests = epochStale_;
    s.watchdogHostCancels = hostCancels_.load(std::memory_order_acquire);
    return s;
}

} // namespace adore
