/**
 * @file
 * Runtime prefetch generation and scheduling (paper Sections 3.3-3.5).
 *
 * For each delinquent load classified by the DependenceSlicer, prefetch
 * code is generated following Fig. 6:
 *
 *  - direct: one reserved register is initialized in trace-entry code to
 *    base + distance and advanced by the lfetch's own post-increment —
 *    the redundancy-folding optimization of Section 3.4 (one lfetch does
 *    both prefetching and stride advancing);
 *  - indirect: an advanced index cursor feeds a speculative non-faulting
 *    ld.s, the captured address transform is regenerated on reserved
 *    registers, and both levels are prefetched with the level-1 lfetch
 *    running further ahead than the level-2 one;
 *  - pointer chasing: induction-pointer prefetching — the pointer is
 *    snapshotted at the body top, the per-iteration delta computed after
 *    the pointer advances, amplified by an iterations-ahead count
 *    (shladd), and used to prefetch down the traversal path.
 *
 * The prefetch distance is ceil(average miss latency / loop body
 * cycles); for small integer strides it is aligned to the L1D line size
 * (not for FP, which bypasses L1).  Generated instructions are scheduled
 * into otherwise-wasted empty slots where possible (Section 3.5); only
 * when no legal slot exists are new bundles inserted.
 *
 * Only the four reserved integer registers (r27-r30) are available:
 * loads are processed in decreasing total-latency order and dropped when
 * registers run out (the applu limitation the paper reports).
 */

#ifndef ADORE_RUNTIME_PREFETCH_GEN_HH
#define ADORE_RUNTIME_PREFETCH_GEN_HH

#include <array>
#include <cstdint>
#include <vector>

#include "observe/event_trace.hh"
#include "runtime/slicer.hh"
#include "runtime/trace.hh"

namespace adore
{

struct PrefetchGenConfig
{
    std::uint8_t firstReservedReg = isa::reservedIntRegFirst;
    std::uint8_t lastReservedReg = isa::reservedIntRegLast;
    std::uint32_t l1LineBytes = 64;
    std::uint32_t maxDistanceIters = 512;
    std::uint32_t indirectLevel1AheadFactor = 2;
    std::uint32_t maxChaseAheadLog2 = 3;
};

/** A delinquent load aggregated from DEAR samples (paper Section 3.1). */
struct DelinquentLoad
{
    Addr origPc = 0;
    InsnPos pos;
    std::uint64_t totalLatency = 0;
    std::uint64_t sampleCount = 0;
    SliceResult slice;

    std::uint32_t
    avgLatency() const
    {
        return sampleCount ? static_cast<std::uint32_t>(totalLatency /
                                                        sampleCount)
                           : 0;
    }
};

struct PrefetchGenResult
{
    std::vector<Bundle> initBundles;  ///< trace-entry code (runs once)
    int directPrefetches = 0;
    int indirectPrefetches = 0;
    int pointerPrefetches = 0;
    int loadsSkippedNoRegs = 0;
    int loadsSkippedUnknown = 0;
    int bundlesInserted = 0;      ///< new body bundles (schedule misses)
    int slotsFilled = 0;          ///< prefetch insns placed in free slots

    int
    totalPrefetchedLoads() const
    {
        return directPrefetches + indirectPrefetches + pointerPrefetches;
    }
};

class PrefetchGenerator
{
  public:
    explicit PrefetchGenerator(const PrefetchGenConfig &config = {})
        : config_(config)
    {
    }

    /**
     * Generate prefetch code for @p loads (already sorted by decreasing
     * total latency and clipped to the top-k) into @p trace's body.
     *
     * @param body_cycles estimated issue-limited cycles per iteration.
     * @param skip_direct do not prefetch direct-pattern loads: used for
     *        traces that already contain compiler-generated lfetch (the
     *        static pass covers exactly the direct refs, so only
     *        indirect / pointer-chasing patterns are still worth runtime
     *        treatment — the O3 behaviour of Section 4.3).
     */
    PrefetchGenResult generate(Trace &trace,
                               const std::vector<DelinquentLoad> &loads,
                               std::uint32_t body_cycles,
                               bool skip_direct = false) const;

    /** Emit a PrefetchInserted event per prefetched load (nullable). */
    void setEventTrace(observe::EventTrace *events) { events_ = events; }

  private:
    struct Scheduler;

    std::uint32_t distanceIters(std::uint32_t avg_latency,
                                std::uint32_t body_cycles) const;

    PrefetchGenConfig config_;
    observe::EventTrace *events_ = nullptr;
};

} // namespace adore

#endif // ADORE_RUNTIME_PREFETCH_GEN_HH
