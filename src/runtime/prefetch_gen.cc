#include "runtime/prefetch_gen.hh"

#include <algorithm>
#include <bit>

#include "isa/builder.hh"
#include "support/logging.hh"
#include "support/stats.hh"

namespace adore
{

/**
 * Slot-level scheduler: places generated instructions into free (nop)
 * slots of the trace body, inserting fresh bundles only when no legal
 * slot exists.  Tracks every live InsnPos so bundle insertions keep
 * later loads' positions valid.
 */
struct PrefetchGenerator::Scheduler
{
    Trace &trace;
    PrefetchGenResult &result;
    std::vector<InsnPos *> tracked;

    Scheduler(Trace &t, PrefetchGenResult &r) : trace(t), result(r) {}

    void track(InsnPos *pos) { tracked.push_back(pos); }

    static bool
    bundleHasBranch(const Bundle &bundle)
    {
        return bundle.branchSlot() >= 0;
    }

    /** Try to overwrite a nop slot of @p bundle with @p insn. */
    static bool
    tryPlaceInBundle(Bundle &bundle, const Insn &insn)
    {
        if (bundleHasBranch(bundle))
            return false;
        SlotKind kind;
        if (Insn::opAllowsSlot(insn.op, SlotKind::I)) {
            kind = SlotKind::I;
        } else if (Insn::opAllowsSlot(insn.op, SlotKind::M)) {
            if (bundle.countKind(SlotKind::M) >= 2)
                return false;
            kind = SlotKind::M;
        } else {
            return false;
        }
        for (int s = 0; s < bundle.size(); ++s) {
            if (bundle.slot(s).isNop()) {
                Insn placed = insn;
                placed.slot = kind;
                bundle.slot(s) = placed;
                return true;
            }
        }
        return false;
    }

    void
    insertBundleAt(int idx, const Bundle &bundle)
    {
        Bundle padded = bundle;
        padded.padWithNops();
        trace.bundles.insert(trace.bundles.begin() + idx, padded);
        trace.origAddrs.insert(trace.origAddrs.begin() + idx, 0);
        if (trace.backedgeBundle >= idx)
            ++trace.backedgeBundle;
        for (int &e : trace.elidedBranches)
            if (e >= idx)
                ++e;
        for (InsnPos *pos : tracked)
            if (pos->bundle >= idx)
                ++pos->bundle;
        ++result.bundlesInserted;
    }

    /** Index of the first body bundle we must not spill past: the
     *  backedge bundle (or end of trace). */
    int
    bodyLimit() const
    {
        return trace.backedgeBundle >= 0
                   ? trace.backedgeBundle
                   : static_cast<int>(trace.bundles.size());
    }

    /**
     * Place @p insn in a bundle with index in [min_bundle, bodyLimit());
     * falls back to inserting a new bundle at bodyLimit() (just before
     * the backedge) or at min_bundle when required.
     * @return the bundle index used.
     */
    int
    placeFrom(const Insn &insn, int min_bundle)
    {
        int limit = bodyLimit();
        for (int b = std::max(0, min_bundle); b < limit; ++b) {
            if (tryPlaceInBundle(trace.bundles[static_cast<std::size_t>(b)],
                                 insn)) {
                ++result.slotsFilled;
                return b;
            }
        }
        int at = std::max(std::min(limit, static_cast<int>(
                                              trace.bundles.size())),
                          min_bundle);
        at = std::min(at, static_cast<int>(trace.bundles.size()));
        Bundle fresh;
        fresh.add(insn);
        insertBundleAt(at, fresh);
        return at;
    }

    /**
     * Place @p insn strictly before bundle @p max_bundle (used for the
     * pointer snapshot that must precede the pointer update).
     * @return the bundle index used.
     */
    int
    placeBefore(const Insn &insn, int max_bundle)
    {
        for (int b = 0; b < max_bundle; ++b) {
            if (tryPlaceInBundle(trace.bundles[static_cast<std::size_t>(b)],
                                 insn)) {
                ++result.slotsFilled;
                return b;
            }
        }
        Bundle fresh;
        fresh.add(insn);
        int at = std::max(0, max_bundle);
        insertBundleAt(at, fresh);
        return at;
    }
};

std::uint32_t
PrefetchGenerator::distanceIters(std::uint32_t avg_latency,
                                 std::uint32_t body_cycles) const
{
    std::uint32_t iters = static_cast<std::uint32_t>(
        ceilDiv(avg_latency, std::max<std::uint32_t>(1, body_cycles)));
    return std::clamp<std::uint32_t>(iters, 1, config_.maxDistanceIters);
}

PrefetchGenResult
PrefetchGenerator::generate(Trace &trace,
                            const std::vector<DelinquentLoad> &loads,
                            std::uint32_t body_cycles,
                            bool skip_direct) const
{
    PrefetchGenResult result;
    Scheduler sched(trace, result);

    // Local mutable copies whose positions survive bundle insertion.
    std::vector<DelinquentLoad> work = loads;
    for (DelinquentLoad &dl : work) {
        sched.track(&dl.pos);
        sched.track(&dl.slice.recurrentDefPos);
    }

    std::uint8_t next_reg = config_.firstReservedReg;
    auto regs_left = [&] {
        return static_cast<int>(config_.lastReservedReg) - next_reg + 1;
    };

    std::vector<Insn> init_insns;

    for (DelinquentLoad &dl : work) {
        if (dl.avgLatency() == 0)
            continue;
        const SliceResult &slice = dl.slice;
        std::uint32_t dist = distanceIters(dl.avgLatency(), body_cycles);

        switch (slice.pattern) {
          case RefPattern::Unknown:
            ++result.loadsSkippedUnknown;
            break;

          case RefPattern::Direct: {
            if (skip_direct)
                break;  // the compiler's lfetch already covers it
            if (regs_left() < 1) {
                ++result.loadsSkippedNoRegs;
                break;
            }
            std::uint8_t r = next_reg++;
            std::int64_t dist_bytes =
                static_cast<std::int64_t>(dist) * slice.strideBytes;
            // Small integer strides: align the distance to the L1D line
            // (FP bypasses L1, Section 3.3).
            if (!slice.fp && slice.strideBytes > 0 &&
                slice.strideBytes <
                    static_cast<std::int64_t>(config_.l1LineBytes)) {
                std::int64_t line =
                    static_cast<std::int64_t>(config_.l1LineBytes);
                dist_bytes = ceilDiv(static_cast<std::uint64_t>(
                                         dist_bytes),
                                     static_cast<std::uint64_t>(line)) *
                             line;
            }
            init_insns.push_back(
                build::addi(r, dist_bytes, slice.baseReg));
            // One lfetch both prefetches and advances the stride
            // (Section 3.4's redundancy folding).
            Insn pf = build::lfetch(
                r, static_cast<std::int32_t>(slice.strideBytes));
            if (slice.fp)
                pf.count = 1;  // .nt1
            int sf_before = result.slotsFilled;
            int at = sched.placeFrom(pf, 0);
            if (events_) {
                events_->emit(observe::PrefetchInsertedEvent{
                    "direct", dl.origPc, dist, at,
                    result.slotsFilled > sf_before});
            }
            ++result.directPrefetches;
            break;
          }

          case RefPattern::Indirect: {
            if (regs_left() < 4) {
                ++result.loadsSkippedNoRegs;
                break;
            }
            std::uint8_t r_adv = next_reg++;
            std::uint8_t r_val = next_reg++;
            std::uint8_t r_addr = next_reg++;
            std::uint8_t r_l1 = next_reg++;

            std::int64_t l1_stride = slice.level1StrideBytes;
            std::int64_t d2_bytes =
                static_cast<std::int64_t>(dist) * l1_stride;
            std::int64_t d1_bytes =
                d2_bytes *
                static_cast<std::int64_t>(config_.indirectLevel1AheadFactor);

            init_insns.push_back(
                build::addi(r_adv, d2_bytes, slice.level1Cursor));
            init_insns.push_back(
                build::addi(r_l1, d1_bytes, slice.level1Cursor));

            // Body: ld.s advanced index; regenerate the transform on
            // reserved registers; prefetch both levels.
            Insn lds = build::lds(slice.level1Size, r_val, r_adv,
                                  static_cast<std::int32_t>(l1_stride));
            int at = sched.placeFrom(lds, 0);

            std::uint8_t prev = r_val;
            for (Insn t : slice.transform) {
                t.rs1 = prev;
                t.rd = r_addr;
                prev = r_addr;
                at = sched.placeFrom(t, at + 1);
            }

            Insn pf2 = build::lfetch(prev);
            if (slice.fp)
                pf2.count = 1;
            int sf_before = result.slotsFilled;
            int pf2_at = sched.placeFrom(pf2, at + 1);

            Insn pf1 = build::lfetch(
                r_l1, static_cast<std::int32_t>(l1_stride));
            sched.placeFrom(pf1, 0);
            if (events_) {
                events_->emit(observe::PrefetchInsertedEvent{
                    "indirect", dl.origPc, dist, pf2_at,
                    result.slotsFilled > sf_before});
            }
            ++result.indirectPrefetches;
            break;
          }

          case RefPattern::PointerChase: {
            if (regs_left() < 1) {
                ++result.loadsSkippedNoRegs;
                break;
            }
            if (!slice.recurrentDefPos.valid()) {
                ++result.loadsSkippedUnknown;
                break;
            }
            std::uint8_t r = next_reg++;
            std::uint8_t p = slice.recurrentReg;

            std::uint32_t ahead_log2 = static_cast<std::uint32_t>(
                std::bit_width(std::max<std::uint32_t>(1, dist) - 1));
            ahead_log2 =
                std::min(ahead_log2, config_.maxChaseAheadLog2);

            // Snapshot the pointer before its in-body update...
            sched.placeBefore(build::mov(r, p),
                              slice.recurrentDefPos.bundle);
            // ...then compute the amplified delta and prefetch ahead
            // along the traversal path (Fig. 6C).
            int at = sched.placeFrom(build::sub(r, p, r),
                                     slice.recurrentDefPos.bundle + 1);
            at = sched.placeFrom(
                build::shladd(r, r, static_cast<std::uint8_t>(ahead_log2),
                              p),
                at + 1);
            int sf_before = result.slotsFilled;
            int pf_at = sched.placeFrom(build::lfetch(r), at + 1);
            if (events_) {
                events_->emit(observe::PrefetchInsertedEvent{
                    "pointer-chasing", dl.origPc, dist, pf_at,
                    result.slotsFilled > sf_before});
            }
            ++result.pointerPrefetches;
            break;
          }
        }
    }

    // Pack the trace-entry (initialization) code into bundles.
    Bundle cur;
    for (const Insn &insn : init_insns) {
        if (!cur.tryAdd(insn)) {
            cur.padWithNops();
            result.initBundles.push_back(cur);
            cur = Bundle();
            cur.add(insn);
        }
    }
    if (!cur.empty()) {
        cur.padWithNops();
        result.initBundles.push_back(cur);
    }

    return result;
}

} // namespace adore
