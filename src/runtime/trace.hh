/**
 * @file
 * A selected trace: a single-entry, multi-exit sequence of bundles copied
 * from the original text (paper Section 2.2/2.4).
 */

#ifndef ADORE_RUNTIME_TRACE_HH
#define ADORE_RUNTIME_TRACE_HH

#include <vector>

#include "isa/bundle.hh"

namespace adore
{

struct Trace
{
    Addr startAddr = 0;  ///< original address of the trace head bundle
    std::vector<Bundle> bundles;       ///< copied code
    std::vector<Addr> origAddrs;       ///< original address per bundle
    bool isLoop = false;
    /** For loop traces: index/slot of the backedge branch. */
    int backedgeBundle = -1;
    int backedgeSlot = -1;
    /**
     * Bundles whose (unconditional) branch was followed during
     * selection: at commit time the branch is elided so execution falls
     * through to the next trace bundle (the paper's "connect the prior
     * instruction stream with the instructions starting from the taken
     * branch's target").
     */
    std::vector<int> elidedBranches;
    /** Reference count of the start target in the path profile. */
    std::uint64_t startRefCount = 0;

    /** Original fall-through address after the last bundle. */
    Addr
    fallthroughAddr() const
    {
        return origAddrs.empty()
                   ? startAddr
                   : origAddrs.back() + isa::bundleBytes;
    }

    /** Whether the original pc @p pc maps into this trace. */
    bool
    containsOrigPc(Addr pc) const
    {
        Addr b = isa::bundleAddr(pc);
        for (Addr a : origAddrs)
            if (a == b)
                return true;
        return false;
    }

    /** Bundle index of the original pc, or -1. */
    int
    bundleIndexOfOrigPc(Addr pc) const
    {
        Addr b = isa::bundleAddr(pc);
        for (std::size_t i = 0; i < origAddrs.size(); ++i)
            if (origAddrs[i] == b)
                return static_cast<int>(i);
        return -1;
    }

    /** True when any slot is a compiler-generated lfetch (the O3 case:
     *  "already have compiler generated lfetch" -> skip). */
    bool
    containsLfetch() const
    {
        for (const Bundle &bundle : bundles)
            for (int s = 0; s < bundle.size(); ++s)
                if (bundle.slot(s).op == Opcode::Lfetch)
                    return true;
        return false;
    }
};

} // namespace adore

#endif // ADORE_RUNTIME_TRACE_HH
