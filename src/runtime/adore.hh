/**
 * @file
 * The ADORE runtime controller (paper Section 2.2, Fig. 3).
 *
 * attach() models dyn_open(): it creates the trace pool (lazily, inside
 * the CodeImage), initializes perfmon-style sampling (Sampler -> SSB,
 * overflow handler -> UEB), and registers the dynamic-optimizer poll.
 * The optimizer "thread" runs as a periodic hook every ~100 ms of
 * simulated time; per the paper, its work happens off the main thread's
 * critical path (the second CPU is idle almost always and the same
 * speedup is achieved on one CPU), so only sampling, SSB-copy and
 * patching overheads are charged to the main thread.
 *
 * The poll consumes new profile windows, runs phase detection, and on a
 * stable high-miss-rate phase performs trace selection, delinquent-load
 * analysis, prefetch generation/scheduling, trace commit, and patching.
 * Phases whose PCcenter lies in the trace pool are skipped (already
 * optimized), as are traces containing compiler-generated lfetch (the
 * O3 case) and traces in software-pipelined loops (the rotation-register
 * limitation of Section 4.3).
 */

#ifndef ADORE_RUNTIME_ADORE_HH
#define ADORE_RUNTIME_ADORE_HH

#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "cpu/cpu.hh"
#include "fault/fault_plan.hh"
#include "observe/event_trace.hh"
#include "runtime/guardrails.hh"
#include "runtime/phase_detector.hh"
#include "runtime/prefetch_gen.hh"
#include "runtime/trace_selector.hh"

namespace adore
{

struct AdoreConfig
{
    SamplerConfig sampler{};
    std::uint32_t uebMultiplier = 16;  ///< W: UEB = W profile windows
    Cycle pollPeriod = 64'000;         ///< scaled "100 ms" poll
    PhaseDetectorConfig phase{};
    TraceSelectorConfig traceSelect{};
    PrefetchGenConfig prefetchGen{};
    int maxPrefetchLoadsPerTrace = 3;  ///< top-3 rule (Section 3.1)
    /**
     * Minimum size for patching a *non-loop* trace: redirecting into a
     * trivially small straight-line trace costs two extra taken
     * branches per execution for no layout benefit.
     */
    std::size_t minNonLoopTraceBundles = 4;
    /** When false, everything runs except trace commit/patch — the
     *  "w/o prefetch insertion" overhead configuration of Fig. 11. */
    bool insertPrefetches = true;
    /** Main-thread cycles charged per patched trace (brief pause). */
    Cycle patchCyclesPerTrace = 400;
    /**
     * Optional filter: returns true when the given original pc belongs
     * to a software-pipelined loop the optimizer must not touch.
     */
    std::function<bool(Addr)> swpLoopFilter;
    /**
     * Extension (paper Section 2.3 suggests it, their implementation
     * did not do it): keep monitoring optimized traces and *unpatch*
     * an optimization batch whose in-pool CPI turns out worse than the
     * phase it replaced.  Off by default to match the paper's system;
     * bench/ablation_adore_params.cc measures its effect.
     */
    bool revertUnprofitableTraces = false;
    /** CPI growth ratio that triggers a revert. */
    double revertCpiRatio = 1.05;
    /**
     * Self-healing guardrails (DESIGN.md §10): staged per-trace revert
     * with re-optimization backoff, sampling-rate backoff on phase
     * thrash, prefetch auto-throttle, and recoverable resource
     * failures.  Off by default; independent of (and superseding, when
     * enabled) the legacy revertUnprofitableTraces whole-batch check.
     */
    GuardrailConfig guardrails{};
    /**
     * Fault-injection plan (not owned; may be null).  Wired into the
     * sampler at attach(); the memory-system channels are wired by the
     * harness, which owns the hierarchy.
     */
    fault::FaultPlan *faultPlan = nullptr;
    /**
     * Trace-pool capacity in bundles (0 = unlimited).  When bounded,
     * commitTrace treats exhaustion as a recoverable reject: the trace
     * is skipped, a stat and event are recorded, and the run continues.
     */
    std::size_t tracePoolCapacityBundles = 0;
    /**
     * Decision-event sink (not owned; may be null).  When null and
     * verbose logging is on, the runtime creates a private echo-only
     * trace so the decision lines still reach the log.
     */
    observe::EventTrace *events = nullptr;
};

struct AdoreStats
{
    std::uint64_t windowsProcessed = 0;
    std::uint64_t windowDoublings = 0;
    std::uint64_t phasesDetected = 0;
    std::uint64_t phaseChanges = 0;
    std::uint64_t phasesSkippedLowMiss = 0;
    std::uint64_t phasesSkippedInPool = 0;
    std::uint64_t phasesOptimized = 0;   ///< >=1 trace patched
    std::uint64_t phasesPrefetched = 0;  ///< >=1 prefetch inserted
    std::uint64_t tracesSelected = 0;
    std::uint64_t loopTraces = 0;
    std::uint64_t tracesPatched = 0;
    std::uint64_t tracesSkippedLfetch = 0;
    std::uint64_t tracesSkippedSwp = 0;
    std::uint64_t tracesSkippedPatched = 0;
    int directPrefetches = 0;
    int indirectPrefetches = 0;
    int pointerPrefetches = 0;
    int loadsSkippedNoRegs = 0;
    int loadsSkippedUnknown = 0;
    int bundlesInserted = 0;
    int slotsFilled = 0;
    std::uint64_t phasesReverted = 0;   ///< nonprofitable batches undone
    std::uint64_t tracesUnpatched = 0;
    std::uint64_t tracesRejectedPoolFull = 0;  ///< pool-exhaustion rejects
    std::uint64_t tracesPatchFailed = 0;       ///< injected patch failures
};

class AdoreRuntime
{
  public:
    AdoreRuntime(Cpu &cpu, const AdoreConfig &config);

    /** dyn_open(): start sampling and install the optimizer poll. */
    void attach();

    /** dyn_close(): stop sampling (stats remain readable). */
    void detach();

    const AdoreStats &stats() const { return stats_; }
    const AdoreConfig &config() const { return config_; }
    Sampler &sampler() { return sampler_; }
    UserEventBuffer &ueb() { return ueb_; }
    PhaseDetector &phaseDetector() { return phaseDetector_; }
    observe::EventTrace *events() const { return events_; }

    /** Guardrail state machines (null unless enabled in the config). */
    const Guardrails *guardrails() const { return guardrails_.get(); }

    /** Optimization batches committed so far (including reverted). */
    std::size_t batchCount() const { return batches_.size(); }

    /** Heads of batch @p index that are still patched. */
    std::vector<Addr> patchedHeadsOf(std::size_t index) const;

    /**
     * Revert a single optimized trace by its original head address —
     * any trace of any batch, not just the most recent.  Unpatches the
     * head, blacklists it, counts tracesUnpatched, and completes the
     * owning batch (phasesReverted) when its last head goes.
     * @return false when @p head is unknown or already unpatched.
     */
    bool revertTrace(Addr head);

    /**
     * Revert every still-patched trace of batch @p index (any batch,
     * not just the most recent).  @return false when @p index is out of
     * range or the batch was already reverted.
     */
    bool revertBatchAt(std::size_t index);

  private:
    void onPoll(Cycle now);
    void optimizePhase(Cycle now);

    /** Aggregate DEAR samples into per-pc delinquent-load records. */
    struct DearAgg
    {
        std::uint64_t totalLatency = 0;
        std::uint64_t count = 0;
    };
    std::unordered_map<Addr, DearAgg>
    aggregateDear(const std::vector<Sample> &samples) const;

    /**
     * Commit an optimized trace to the pool and patch the original
     * code.  @return the trace's pool address.
     */
    Addr commitTrace(const Trace &trace,
                     const std::vector<Bundle> &init_bundles);

    /** One committed trace of a batch, with its pool footprint. */
    struct PatchedTrace
    {
        Addr head = 0;       ///< original-code head (patch site)
        Addr poolStart = 0;  ///< first pool byte of the trace
        Addr poolEnd = 0;    ///< one past the last pool byte
    };

    /** One optimization batch, remembered for profitability checks. */
    struct OptimizedBatch
    {
        double cpiBefore = 0.0;
        std::vector<PatchedTrace> traces;
        bool reverted = false;  ///< no patched head remains
        int revertStage = 0;    ///< guardrail staged-revert progress
    };

    /** Revert the most recent unreverted batch (unpatch its heads). */
    void revertBatch(OptimizedBatch &batch);

    /**
     * Unpatch one head of @p batch (stats + event + charge); marks the
     * batch reverted when its last head goes.  @p blacklist routes the
     * head to the permanent blacklist (legacy semantics) instead of the
     * guardrails' backoff.  @return false when not patched.
     */
    bool unpatchHead(OptimizedBatch &batch, Addr head, bool blacklist);

    /** Guardrail staged revert for an in-pool phase that regressed. */
    void guardrailProfitabilityCheck(const PhaseInfo &phase);

    /** End-of-poll guardrail feeding: mem pressure, sampler retiming. */
    void endPollGuardrails();

    /** Emit per-channel FaultInjectedEvents for this poll's deltas. */
    void emitFaultDeltas();

    Cpu &cpu_;
    AdoreConfig config_;
    Sampler sampler_;
    UserEventBuffer ueb_;
    PhaseDetector phaseDetector_;
    TraceSelector traceSelector_;
    PrefetchGenerator prefetchGen_;
    AdoreStats stats_;
    observe::EventTrace *events_ = nullptr;
    std::unique_ptr<observe::EventTrace> ownEvents_;
    std::uint64_t windowsConsumed_ = 0;
    bool attached_ = false;
    std::vector<OptimizedBatch> batches_;
    /** Heads of reverted traces: never re-optimized. */
    std::unordered_set<Addr> blacklist_;
    /** Guardrail state machines; null unless enabled. */
    std::unique_ptr<Guardrails> guardrails_;
    Cycle baseSamplingInterval_ = 0;  ///< pre-backoff sampling interval
    std::uint64_t lastPrefetchesIssued_ = 0;
    std::uint64_t lastPrefetchesDropped_ = 0;
    fault::FaultStats lastFaultStats_;  ///< per-poll delta reference
};

} // namespace adore

#endif // ADORE_RUNTIME_ADORE_HH
