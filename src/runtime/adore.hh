/**
 * @file
 * The ADORE runtime controller (paper Section 2.2, Fig. 3).
 *
 * attach() models dyn_open(): it creates the trace pool (lazily, inside
 * the CodeImage), initializes perfmon-style sampling (Sampler -> SSB,
 * overflow handler -> UEB), and registers the dynamic-optimizer poll.
 * The optimizer "thread" runs as a periodic hook every ~100 ms of
 * simulated time; per the paper, its work happens off the main thread's
 * critical path (the second CPU is idle almost always and the same
 * speedup is achieved on one CPU), so only sampling, SSB-copy and
 * patching overheads are charged to the main thread.
 *
 * The poll consumes new profile windows, runs phase detection, and on a
 * stable high-miss-rate phase performs trace selection, delinquent-load
 * analysis, prefetch generation/scheduling, trace commit, and patching.
 * Phases whose PCcenter lies in the trace pool are skipped (already
 * optimized), as are traces containing compiler-generated lfetch (the
 * O3 case) and traces in software-pipelined loops (the rotation-register
 * limitation of Section 4.3).
 */

#ifndef ADORE_RUNTIME_ADORE_HH
#define ADORE_RUNTIME_ADORE_HH

#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "cpu/cpu.hh"
#include "observe/event_trace.hh"
#include "runtime/phase_detector.hh"
#include "runtime/prefetch_gen.hh"
#include "runtime/trace_selector.hh"

namespace adore
{

struct AdoreConfig
{
    SamplerConfig sampler{};
    std::uint32_t uebMultiplier = 16;  ///< W: UEB = W profile windows
    Cycle pollPeriod = 64'000;         ///< scaled "100 ms" poll
    PhaseDetectorConfig phase{};
    TraceSelectorConfig traceSelect{};
    PrefetchGenConfig prefetchGen{};
    int maxPrefetchLoadsPerTrace = 3;  ///< top-3 rule (Section 3.1)
    /**
     * Minimum size for patching a *non-loop* trace: redirecting into a
     * trivially small straight-line trace costs two extra taken
     * branches per execution for no layout benefit.
     */
    std::size_t minNonLoopTraceBundles = 4;
    /** When false, everything runs except trace commit/patch — the
     *  "w/o prefetch insertion" overhead configuration of Fig. 11. */
    bool insertPrefetches = true;
    /** Main-thread cycles charged per patched trace (brief pause). */
    Cycle patchCyclesPerTrace = 400;
    /**
     * Optional filter: returns true when the given original pc belongs
     * to a software-pipelined loop the optimizer must not touch.
     */
    std::function<bool(Addr)> swpLoopFilter;
    /**
     * Extension (paper Section 2.3 suggests it, their implementation
     * did not do it): keep monitoring optimized traces and *unpatch*
     * an optimization batch whose in-pool CPI turns out worse than the
     * phase it replaced.  Off by default to match the paper's system;
     * bench/ablation_adore_params.cc measures its effect.
     */
    bool revertUnprofitableTraces = false;
    /** CPI growth ratio that triggers a revert. */
    double revertCpiRatio = 1.05;
    /**
     * Decision-event sink (not owned; may be null).  When null and
     * verbose logging is on, the runtime creates a private echo-only
     * trace so the decision lines still reach the log.
     */
    observe::EventTrace *events = nullptr;
};

struct AdoreStats
{
    std::uint64_t windowsProcessed = 0;
    std::uint64_t windowDoublings = 0;
    std::uint64_t phasesDetected = 0;
    std::uint64_t phaseChanges = 0;
    std::uint64_t phasesSkippedLowMiss = 0;
    std::uint64_t phasesSkippedInPool = 0;
    std::uint64_t phasesOptimized = 0;   ///< >=1 trace patched
    std::uint64_t phasesPrefetched = 0;  ///< >=1 prefetch inserted
    std::uint64_t tracesSelected = 0;
    std::uint64_t loopTraces = 0;
    std::uint64_t tracesPatched = 0;
    std::uint64_t tracesSkippedLfetch = 0;
    std::uint64_t tracesSkippedSwp = 0;
    std::uint64_t tracesSkippedPatched = 0;
    int directPrefetches = 0;
    int indirectPrefetches = 0;
    int pointerPrefetches = 0;
    int loadsSkippedNoRegs = 0;
    int loadsSkippedUnknown = 0;
    int bundlesInserted = 0;
    int slotsFilled = 0;
    std::uint64_t phasesReverted = 0;   ///< nonprofitable batches undone
    std::uint64_t tracesUnpatched = 0;
};

class AdoreRuntime
{
  public:
    AdoreRuntime(Cpu &cpu, const AdoreConfig &config);

    /** dyn_open(): start sampling and install the optimizer poll. */
    void attach();

    /** dyn_close(): stop sampling (stats remain readable). */
    void detach();

    const AdoreStats &stats() const { return stats_; }
    const AdoreConfig &config() const { return config_; }
    Sampler &sampler() { return sampler_; }
    UserEventBuffer &ueb() { return ueb_; }
    PhaseDetector &phaseDetector() { return phaseDetector_; }
    observe::EventTrace *events() const { return events_; }

  private:
    void onPoll(Cycle now);
    void optimizePhase(Cycle now);

    /** Aggregate DEAR samples into per-pc delinquent-load records. */
    struct DearAgg
    {
        std::uint64_t totalLatency = 0;
        std::uint64_t count = 0;
    };
    std::unordered_map<Addr, DearAgg>
    aggregateDear(const std::vector<Sample> &samples) const;

    /**
     * Commit an optimized trace to the pool and patch the original
     * code.  @return the trace's pool address.
     */
    Addr commitTrace(const Trace &trace,
                     const std::vector<Bundle> &init_bundles);

    /** One optimization batch, remembered for profitability checks. */
    struct OptimizedBatch
    {
        double cpiBefore = 0.0;
        std::vector<Addr> patchedHeads;
        bool reverted = false;
    };

    /** Revert the most recent unreverted batch (unpatch its heads). */
    void revertBatch(OptimizedBatch &batch);

    Cpu &cpu_;
    AdoreConfig config_;
    Sampler sampler_;
    UserEventBuffer ueb_;
    PhaseDetector phaseDetector_;
    TraceSelector traceSelector_;
    PrefetchGenerator prefetchGen_;
    AdoreStats stats_;
    observe::EventTrace *events_ = nullptr;
    std::unique_ptr<observe::EventTrace> ownEvents_;
    std::uint64_t windowsConsumed_ = 0;
    bool attached_ = false;
    std::vector<OptimizedBatch> batches_;
    /** Heads of reverted traces: never re-optimized. */
    std::unordered_set<Addr> blacklist_;
};

} // namespace adore

#endif // ADORE_RUNTIME_ADORE_HH
