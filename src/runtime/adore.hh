/**
 * @file
 * The ADORE runtime controller (paper Section 2.2, Fig. 3).
 *
 * attach() models dyn_open(): it creates the trace pool (lazily, inside
 * the CodeImage), initializes perfmon-style sampling (Sampler -> SSB,
 * overflow handler -> UEB), and registers the dynamic-optimizer poll.
 * The optimizer "thread" runs as a periodic hook every ~100 ms of
 * simulated time; per the paper, its work happens off the main thread's
 * critical path (the second CPU is idle almost always and the same
 * speedup is achieved on one CPU), so only sampling, SSB-copy and
 * patching overheads are charged to the main thread.
 *
 * The poll consumes new profile windows, runs phase detection, and on a
 * stable high-miss-rate phase performs trace selection, delinquent-load
 * analysis, prefetch generation/scheduling, trace commit, and patching.
 * Phases whose PCcenter lies in the trace pool are skipped (already
 * optimized), as are traces containing compiler-generated lfetch (the
 * O3 case) and traces in software-pipelined loops (the rotation-register
 * limitation of Section 4.3).
 */

#ifndef ADORE_RUNTIME_ADORE_HH
#define ADORE_RUNTIME_ADORE_HH

#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "cpu/cpu.hh"
#include "fault/fault_plan.hh"
#include "observe/event_trace.hh"
#include "runtime/guardrails.hh"
#include "runtime/phase_detector.hh"
#include "runtime/prefetch_gen.hh"
#include "runtime/trace_selector.hh"

namespace adore
{

class OptimizerService;
class HwPrefetchController;

/**
 * Where the optimizer poll body runs (DESIGN.md §11).
 *
 *  - Synchronous: inside the Cpu's periodic hook on the main thread —
 *    the original single-threaded runtime.
 *  - AsyncBarrier: on a real worker thread, but the main thread blocks
 *    at each poll until the worker finishes.  Bit-identical to
 *    Synchronous (the handshake orders every access) while exercising
 *    the full cross-thread queue/handshake machinery — the default.
 *  - FreeRunning: the worker runs concurrently with the interpreter;
 *    commits and reverts are applied by the main thread at poll-hook
 *    safe points.  Not bit-identical (commit timing shifts); used by
 *    the chaos soak and the TSan stress shard.
 */
enum class OptimizerMode
{
    Synchronous,
    AsyncBarrier,
    FreeRunning,
};

/** Stable name for an optimizer mode ("sync" | "barrier" | "free"). */
const char *optimizerModeName(OptimizerMode mode);

struct AdoreConfig
{
    SamplerConfig sampler{};
    std::uint32_t uebMultiplier = 16;  ///< W: UEB = W profile windows
    Cycle pollPeriod = 64'000;         ///< scaled "100 ms" poll
    PhaseDetectorConfig phase{};
    TraceSelectorConfig traceSelect{};
    PrefetchGenConfig prefetchGen{};
    int maxPrefetchLoadsPerTrace = 3;  ///< top-3 rule (Section 3.1)
    /**
     * Minimum size for patching a *non-loop* trace: redirecting into a
     * trivially small straight-line trace costs two extra taken
     * branches per execution for no layout benefit.
     */
    std::size_t minNonLoopTraceBundles = 4;
    /** When false, everything runs except trace commit/patch — the
     *  "w/o prefetch insertion" overhead configuration of Fig. 11. */
    bool insertPrefetches = true;
    /** Main-thread cycles charged per patched trace (brief pause). */
    Cycle patchCyclesPerTrace = 400;
    /**
     * Optional filter: returns true when the given original pc belongs
     * to a software-pipelined loop the optimizer must not touch.
     */
    std::function<bool(Addr)> swpLoopFilter;
    /**
     * Extension (paper Section 2.3 suggests it, their implementation
     * did not do it): keep monitoring optimized traces and *unpatch*
     * an optimization batch whose in-pool CPI turns out worse than the
     * phase it replaced.  Off by default to match the paper's system;
     * bench/ablation_adore_params.cc measures its effect.
     */
    bool revertUnprofitableTraces = false;
    /** CPI growth ratio that triggers a revert. */
    double revertCpiRatio = 1.05;
    /**
     * Self-healing guardrails (DESIGN.md §10): staged per-trace revert
     * with re-optimization backoff, sampling-rate backoff on phase
     * thrash, prefetch auto-throttle, and recoverable resource
     * failures.  Off by default; independent of (and superseding, when
     * enabled) the legacy revertUnprofitableTraces whole-batch check.
     */
    GuardrailConfig guardrails{};
    /**
     * Fault-injection plan (not owned; may be null).  Wired into the
     * sampler at attach(); the memory-system channels are wired by the
     * harness, which owns the hierarchy.
     */
    fault::FaultPlan *faultPlan = nullptr;
    /**
     * Trace-pool capacity in bundles (0 = unlimited).  When bounded,
     * commitTrace treats exhaustion as a recoverable reject: the trace
     * is skipped, a stat and event are recorded, and the run continues.
     */
    std::size_t tracePoolCapacityBundles = 0;
    /**
     * Decision-event sink (not owned; may be null).  When null and
     * verbose logging is on, the runtime creates a private echo-only
     * trace so the decision lines still reach the log.
     */
    observe::EventTrace *events = nullptr;
    /** Optimizer threading mode (see OptimizerMode). */
    OptimizerMode mode = OptimizerMode::Synchronous;
    /**
     * Adaptive hardware-prefetch controller (not owned; may be null).
     * When set, the runtime forwards phase-change notifications so the
     * controller can retune per phase, and the guardrails fold the hw
     * prefetchers' issue/drop deltas into the shared-bus throttle
     * arbitration.  The harness owns the controller and its poll hook.
     */
    HwPrefetchController *hwpfController = nullptr;
    /**
     * Bounded sample-batch queue capacity (async modes).  A full queue
     * means the optimizer fell behind: the batch is dropped at the
     * producer and counted (pmu.dropped_consumer_behind), mirroring the
     * kernel sampling buffer the paper's optimizer reads.
     */
    std::size_t sampleQueueCapacity = 8;
    /**
     * Deterministic watchdog deadline in virtual cycles: an injected
     * optimizer stall (FaultConfig::optimizerStallRate) longer than
     * this cancels the phase optimization and degrades via the
     * guardrail throttle.  Applies in every mode.
     */
    Cycle watchdogDeadlineCycles = 150'000;
    /**
     * Host-time watchdog deadline in nanoseconds (free-running mode
     * only): when the main thread's poll observes one optimizePhase
     * running longer than this, it requests cancellation; the worker
     * honors it between traces and between load classifications.
     */
    std::uint64_t watchdogDeadlineNs = 250'000'000;
    /**
     * Test-only: invoked on the optimizer thread for each candidate
     * trace in optimizePhase (before slicing).  Lets tests stall the
     * worker deterministically to exercise queue backpressure and the
     * host-time watchdog.  Must be null in production configs.
     */
    std::function<void(Addr)> perTraceTestHook;
};

struct AdoreStats
{
    std::uint64_t windowsProcessed = 0;
    std::uint64_t windowDoublings = 0;
    std::uint64_t phasesDetected = 0;
    std::uint64_t phaseChanges = 0;
    std::uint64_t phasesSkippedLowMiss = 0;
    std::uint64_t phasesSkippedInPool = 0;
    std::uint64_t phasesOptimized = 0;   ///< >=1 trace patched
    std::uint64_t phasesPrefetched = 0;  ///< >=1 prefetch inserted
    std::uint64_t tracesSelected = 0;
    std::uint64_t loopTraces = 0;
    std::uint64_t tracesPatched = 0;
    std::uint64_t tracesSkippedLfetch = 0;
    std::uint64_t tracesSkippedSwp = 0;
    std::uint64_t tracesSkippedPatched = 0;
    int directPrefetches = 0;
    int indirectPrefetches = 0;
    int pointerPrefetches = 0;
    int loadsSkippedNoRegs = 0;
    int loadsSkippedUnknown = 0;
    int bundlesInserted = 0;
    int slotsFilled = 0;
    std::uint64_t phasesReverted = 0;   ///< nonprofitable batches undone
    std::uint64_t tracesUnpatched = 0;
    std::uint64_t tracesRejectedPoolFull = 0;  ///< pool-exhaustion rejects
    std::uint64_t tracesPatchFailed = 0;       ///< injected patch failures
    std::uint64_t phasesWatchdogCancelled = 0; ///< watchdog-cancelled phases
    std::uint64_t tracesCommitStale = 0;  ///< async commits refused stale
    /** CodeImage region generations bumped by this runtime's pool
     *  writes, patches and reverts — how much region-keyed superblock
     *  and decoded-bundle state each mutation could have invalidated. */
    std::uint64_t regionGenBumps = 0;
};

class AdoreRuntime
{
  public:
    AdoreRuntime(Cpu &cpu, const AdoreConfig &config);

    /** Joins the optimizer worker (if any) before members die. */
    ~AdoreRuntime();

    /** dyn_open(): start sampling and install the optimizer poll. */
    void attach();

    /** dyn_close(): stop sampling and quiesce the optimizer service
     *  (joins the worker; stats remain readable). */
    void detach();

    const AdoreStats &stats() const { return stats_; }
    const AdoreConfig &config() const { return config_; }
    Sampler &sampler() { return sampler_; }
    UserEventBuffer &ueb() { return ueb_; }
    PhaseDetector &phaseDetector() { return phaseDetector_; }
    observe::EventTrace *events() const { return events_; }

    /** Guardrail state machines (null unless enabled in the config). */
    const Guardrails *guardrails() const { return guardrails_.get(); }

    /** Optimizer service (null in Synchronous mode or before attach). */
    const OptimizerService *optimizerService() const
    {
        return service_.get();
    }

    /** Optimization batches committed so far (including reverted). */
    std::size_t batchCount() const { return batches_.size(); }

    /** Heads of batch @p index that are still patched. */
    std::vector<Addr> patchedHeadsOf(std::size_t index) const;

    /**
     * Revert a single optimized trace by its original head address —
     * any trace of any batch, not just the most recent.  Unpatches the
     * head, blacklists it, counts tracesUnpatched, and completes the
     * owning batch (phasesReverted) when its last head goes.
     * @return false when @p head is unknown or already unpatched.
     */
    bool revertTrace(Addr head);

    /**
     * Revert every still-patched trace of batch @p index (any batch,
     * not just the most recent).  @return false when @p index is out of
     * range or the batch was already reverted.
     */
    bool revertBatchAt(std::size_t index);

  private:
    friend class OptimizerService;

    void onPoll(Cycle now);

    /** The window-consumption loop of one poll (phase detection and
     *  the optimize/skip/revert decisions).  Runs on whichever thread
     *  owns the optimizer in the current mode. */
    void consumeWindows(Cycle now);

    void optimizePhase(Cycle now);

    /** True when commits/reverts are deferred to the main thread via
     *  the service queues (free-running mode with a live service). */
    bool deferredCommits() const;

    /** The watchdog cancelled the running phase optimization. */
    void cancelPhaseByWatchdog(Addr pc_center, std::uint64_t magnitude);

    /** Aggregate DEAR samples into per-pc delinquent-load records. */
    struct DearAgg
    {
        std::uint64_t totalLatency = 0;
        std::uint64_t count = 0;
    };
    std::unordered_map<Addr, DearAgg>
    aggregateDear(const std::vector<Sample> &samples) const;

    /**
     * Commit an optimized trace to the pool and patch the original
     * code.  @return the trace's pool address.
     */
    Addr commitTrace(const Trace &trace,
                     const std::vector<Bundle> &init_bundles);

    /**
     * The mutation half of a commit: allocate pool space, write the
     * init/body/exit bundles (backedge retarget, branch elision), and
     * patch the head.  Emits no events and draws no fault decisions —
     * in free-running mode this runs on the *main* thread under the
     * service's patch mutex while all bookkeeping stays on the worker.
     * @return the pool base, or badAddr on pool exhaustion.
     */
    Addr writeTraceToPool(const Trace &trace,
                          const std::vector<Bundle> &init_bundles);

    /** One committed trace of a batch, with its pool footprint. */
    struct PatchedTrace
    {
        Addr head = 0;       ///< original-code head (patch site)
        Addr poolStart = 0;  ///< first pool byte of the trace
        Addr poolEnd = 0;    ///< one past the last pool byte
    };

    /** One optimization batch, remembered for profitability checks. */
    struct OptimizedBatch
    {
        double cpiBefore = 0.0;
        std::vector<PatchedTrace> traces;
        bool reverted = false;  ///< no patched head remains
        int revertStage = 0;    ///< guardrail staged-revert progress
        /** Still-patched heads per the worker's shadow (free-running
         *  bookkeeping only; 0 and unused in the other modes). */
        std::size_t patchedCount = 0;
    };

    /** Revert the most recent unreverted batch (unpatch its heads). */
    void revertBatch(OptimizedBatch &batch);

    /**
     * Unpatch one head of @p batch (stats + event + charge); marks the
     * batch reverted when its last head goes.  @p blacklist routes the
     * head to the permanent blacklist (legacy semantics) instead of the
     * guardrails' backoff.  @return false when not patched.
     */
    bool unpatchHead(OptimizedBatch &batch, Addr head, bool blacklist);

    /** Guardrail staged revert for an in-pool phase that regressed. */
    void guardrailProfitabilityCheck(const PhaseInfo &phase);

    /** End-of-poll guardrail feeding: mem pressure, sampler retiming.
     *  Reads the main-owned cache stats — sync/barrier modes only. */
    void endPollGuardrails();

    /** Mode-independent tail of endPollGuardrails: feed the prefetch
     *  deltas, advance the state machines, retime the sampler (directly
     *  or via the service mailbox in free-running mode). */
    void finishPollGuardrails(std::uint64_t issued_delta,
                              std::uint64_t dropped_delta,
                              std::uint64_t hw_issued_delta = 0,
                              std::uint64_t hw_dropped_delta = 0);

    /** Emit per-channel FaultInjectedEvents for this poll's deltas.
     *  @p fs is the stats view to diff against the last poll — the
     *  live plan in sync/barrier modes, a merged main-channel snapshot
     *  plus live worker channels in free-running mode. */
    void emitFaultDeltas(const fault::FaultStats &fs);

    Cpu &cpu_;
    AdoreConfig config_;
    Sampler sampler_;
    UserEventBuffer ueb_;
    PhaseDetector phaseDetector_;
    TraceSelector traceSelector_;
    PrefetchGenerator prefetchGen_;
    AdoreStats stats_;
    observe::EventTrace *events_ = nullptr;
    std::unique_ptr<observe::EventTrace> ownEvents_;
    std::uint64_t windowsConsumed_ = 0;
    bool attached_ = false;
    std::vector<OptimizedBatch> batches_;
    /** Heads of reverted traces: never re-optimized. */
    std::unordered_set<Addr> blacklist_;
    /** Guardrail state machines; null unless enabled. */
    std::unique_ptr<Guardrails> guardrails_;
    /** Worker thread + queues; null in Synchronous mode. */
    std::unique_ptr<OptimizerService> service_;
    Cycle baseSamplingInterval_ = 0;  ///< pre-backoff sampling interval
    std::uint64_t lastPrefetchesIssued_ = 0;
    std::uint64_t lastPrefetchesDropped_ = 0;
    std::uint64_t lastHwIssued_ = 0;
    std::uint64_t lastHwDropped_ = 0;
    fault::FaultStats lastFaultStats_;  ///< per-poll delta reference
};

} // namespace adore

#endif // ADORE_RUNTIME_ADORE_HH
