/**
 * @file
 * Trace selection from BTB path-profile samples (paper Section 2.4).
 *
 * The selector builds two hash tables from the sampled Branch Trace
 * Buffer entries: per-branch outcome counts (the path-profile fraction)
 * and branch-target reference counts.  Trace construction starts at the
 * hottest target and follows the dominant direction of each branch,
 * breaking bundles at taken mid-bundle branches (discarding the
 * fall-through remainder), until a stop point: a function call/return, a
 * backedge to the trace start (making a loop trace), a revisited
 * address, a balanced-bias conditional branch, or code that is already
 * in the trace pool.
 */

#ifndef ADORE_RUNTIME_TRACE_SELECTOR_HH
#define ADORE_RUNTIME_TRACE_SELECTOR_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "observe/event_trace.hh"
#include "program/code_image.hh"
#include "pmu/sampler.hh"
#include "runtime/trace.hh"

namespace adore
{

struct TraceSelectorConfig
{
    double biasThreshold = 0.7;   ///< dominant-direction cutoff
    std::size_t maxTraceBundles = 96;
    std::size_t maxTraces = 8;
    std::uint64_t minStartRefCount = 8;
};

class TraceSelector
{
  public:
    TraceSelector(const CodeImage &code, const TraceSelectorConfig &config)
        : code_(code), config_(config)
    {
    }

    /**
     * Build traces from the BTB contents of @p samples (typically the
     * stable-phase windows of the UEB).
     */
    std::vector<Trace> select(const std::vector<Sample> &samples) const;

    /** Emit a TraceSelected event per selected trace (nullable). */
    void setEventTrace(observe::EventTrace *events) { events_ = events; }

  private:
    struct BranchStats
    {
        std::uint64_t taken = 0;
        std::uint64_t notTaken = 0;
        Addr takenTarget = 0;

        double
        bias() const
        {
            std::uint64_t total = taken + notTaken;
            return total ? static_cast<double>(taken) /
                               static_cast<double>(total)
                         : 0.0;
        }
    };

    using BranchTable = std::unordered_map<Addr, BranchStats>;
    using TargetTable = std::unordered_map<Addr, std::uint64_t>;

    void buildTables(const std::vector<Sample> &samples,
                     BranchTable &branches, TargetTable &targets) const;

    /** Grow one trace from @p start; empty result on failure. */
    Trace buildTrace(Addr start, const BranchTable &branches) const;

    const CodeImage &code_;
    TraceSelectorConfig config_;
    observe::EventTrace *events_ = nullptr;
};

} // namespace adore

#endif // ADORE_RUNTIME_TRACE_SELECTOR_HH
