#include "runtime/adore.hh"

#include <algorithm>

#include "isa/builder.hh"
#include "runtime/hwpf_controller.hh"
#include "runtime/optimizer_service.hh"
#include "runtime/slicer.hh"
#include "support/logging.hh"

namespace adore
{

const char *
optimizerModeName(OptimizerMode mode)
{
    switch (mode) {
      case OptimizerMode::Synchronous:
        return "sync";
      case OptimizerMode::AsyncBarrier:
        return "barrier";
      case OptimizerMode::FreeRunning:
        return "free";
    }
    return "?";
}

AdoreRuntime::AdoreRuntime(Cpu &cpu, const AdoreConfig &config)
    : cpu_(cpu),
      config_(config),
      sampler_(config.sampler),
      ueb_(config.uebMultiplier),
      phaseDetector_(config.phase),
      traceSelector_(cpu.code(), config.traceSelect),
      prefetchGen_(config.prefetchGen)
{
}

AdoreRuntime::~AdoreRuntime()
{
    if (service_)
        service_->shutdown();
}

bool
AdoreRuntime::deferredCommits() const
{
    return service_ && config_.mode == OptimizerMode::FreeRunning;
}

void
AdoreRuntime::attach()
{
    panic_if(attached_, "AdoreRuntime attached twice");
    attached_ = true;

    events_ = config_.events;
    if (!events_ && verbose()) {
        // No external sink, but verbose logging wants the decision
        // lines: a private echo-only trace renders every event through
        // inform() (the single formatting path the old ad-hoc verbose
        // prints were folded into).
        ownEvents_ = std::make_unique<observe::EventTrace>(512);
        ownEvents_->enable();
        ownEvents_->setEcho(true);
        events_ = ownEvents_.get();
    }
    phaseDetector_.setEventTrace(events_);
    traceSelector_.setEventTrace(events_);
    prefetchGen_.setEventTrace(events_);

    if (config_.faultPlan)
        sampler_.setFaultPlan(config_.faultPlan);
    if (config_.tracePoolCapacityBundles)
        cpu_.code().setPoolCapacity(config_.tracePoolCapacityBundles);
    if (config_.guardrails.enabled) {
        guardrails_ = std::make_unique<Guardrails>(config_.guardrails);
        guardrails_->setEventTrace(events_);
    }
    baseSamplingInterval_ = config_.sampler.interval;

    phaseDetector_.setDoubleWindowCallback([this] {
        ++stats_.windowDoublings;
        if (deferredCommits()) {
            // The sampler belongs to the main thread; the worker only
            // requests the resize and main applies it at a safe point.
            service_->requestDoubleWindow();
        } else {
            sampler_.doubleWindow();
        }
    });

    cpu_.setSampler(&sampler_);
    sampler_.setEnabled(true, cpu_.cycle());

    if (config_.mode == OptimizerMode::Synchronous) {
        sampler_.setOverflowHandler(
            [this](const std::vector<Sample> &ssb) {
                ueb_.pushWindow(ssb);
                return true;
            });
        cpu_.addPeriodicHook(config_.pollPeriod,
                             [this](Cycle now) { onPoll(now); });
    } else {
        service_ = std::make_unique<OptimizerService>(*this);
        sampler_.setOverflowHandler(
            [this](const std::vector<Sample> &ssb) {
                return service_->enqueueBatch(ssb);
            });
        cpu_.addPeriodicHook(config_.pollPeriod,
                             [this](Cycle now) { service_->poll(now); });
        service_->start();
    }
}

void
AdoreRuntime::detach()
{
    sampler_.setEnabled(false);
    if (service_)
        service_->shutdown();
}

void
AdoreRuntime::onPoll(Cycle now)
{
    if (events_)
        events_->setNow(now);
    if (guardrails_)
        guardrails_->beginPoll();

    consumeWindows(now);

    if (config_.faultPlan && events_)
        emitFaultDeltas(config_.faultPlan->stats());
    if (guardrails_)
        endPollGuardrails();
}

void
AdoreRuntime::consumeWindows(Cycle now)
{
    // Consume any profile windows that arrived since the last poll.
    while (windowsConsumed_ < ueb_.totalWindows()) {
        std::uint64_t behind = ueb_.totalWindows() - windowsConsumed_;
        if (behind > ueb_.retainedWindows()) {
            // Older windows fell off the circular buffer.
            windowsConsumed_ = ueb_.totalWindows() -
                               ueb_.retainedWindows();
            behind = ueb_.retainedWindows();
        }
        const std::vector<Sample> &window =
            ueb_.window(ueb_.retainedWindows() - behind);
        ++windowsConsumed_;
        ++stats_.windowsProcessed;
        if (events_) {
            events_->emit(observe::SamplingBatchEvent{
                windowsConsumed_ - 1,
                static_cast<std::uint32_t>(window.size())});
        }

        PhaseDetector::Event event = phaseDetector_.onWindow(window, now);
        switch (event) {
          case PhaseDetector::Event::None:
            break;
          case PhaseDetector::Event::PhaseChange:
            ++stats_.phaseChanges;
            if (guardrails_)
                guardrails_->notePhaseChange();
            if (config_.hwpfController)
                config_.hwpfController->notePhaseChange();
            break;
          case PhaseDetector::Event::StablePhase: {
            ++stats_.phasesDetected;
            const PhaseInfo &phase = phaseDetector_.current();
            if (CodeImage::inPool(phase.pcCenter)) {
                // Already running out of the trace pool: skip to avoid
                // re-optimization (Section 2.3) — but keep monitoring:
                // when enabled, a batch whose in-pool CPI regressed
                // past the pre-optimization level is unpatched.
                ++stats_.phasesSkippedInPool;
                if (events_) {
                    events_->emit(observe::PhaseSkippedEvent{
                        "in-pool", phase.cpi,
                        batches_.empty() ? 0.0
                                         : batches_.back().cpiBefore});
                }
                if (guardrails_) {
                    guardrailProfitabilityCheck(phase);
                } else if (config_.revertUnprofitableTraces &&
                           !batches_.empty() &&
                           !batches_.back().reverted &&
                           phase.cpi > batches_.back().cpiBefore *
                                           config_.revertCpiRatio) {
                    revertBatch(batches_.back());
                }
            } else if (!phase.highMissRate) {
                ++stats_.phasesSkippedLowMiss;
                if (events_) {
                    events_->emit(observe::PhaseSkippedEvent{
                        "low-miss-rate", phase.cpi, 0.0});
                }
            } else {
                optimizePhase(now);
            }
            break;
          }
        }
    }
}

void
AdoreRuntime::emitFaultDeltas(const fault::FaultStats &fs)
{
    auto delta = [this](const char *channel, std::uint64_t cur,
                        std::uint64_t &last) {
        if (cur > last)
            events_->emit(observe::FaultInjectedEvent{channel, cur - last});
        last = cur;
    };
    delta("drop-batch", fs.batchesDropped, lastFaultStats_.batchesDropped);
    delta("dup-batch", fs.batchesDuplicated,
          lastFaultStats_.batchesDuplicated);
    delta("dear-alias", fs.dearAliased, lastFaultStats_.dearAliased);
    delta("counter-jitter", fs.countersJittered,
          lastFaultStats_.countersJittered);
    delta("btb-corrupt", fs.btbCorrupted, lastFaultStats_.btbCorrupted);
    delta("patch-fail", fs.patchesFailed, lastFaultStats_.patchesFailed);
    delta("optimizer-stall", fs.optimizerStalls,
          lastFaultStats_.optimizerStalls);
    delta("mem-jitter", fs.memFillsJittered,
          lastFaultStats_.memFillsJittered);
    delta("bus-squeeze", fs.busSqueezes, lastFaultStats_.busSqueezes);
}

void
AdoreRuntime::endPollGuardrails()
{
    const HierarchyStats &mem = cpu_.caches().stats();
    std::uint64_t issued = mem.prefetchesIssued - lastPrefetchesIssued_;
    std::uint64_t dropped = mem.prefetchesDropped - lastPrefetchesDropped_;
    lastPrefetchesIssued_ = mem.prefetchesIssued;
    lastPrefetchesDropped_ = mem.prefetchesDropped;
    std::uint64_t hwIssued = 0;
    std::uint64_t hwDropped = 0;
    if (const HwPrefetchEngine *hw = cpu_.caches().hwPrefetch()) {
        const HwPrefetchStats &hs = hw->stats();
        hwIssued = hs.issued() - lastHwIssued_;
        hwDropped = hs.dropped() - lastHwDropped_;
        lastHwIssued_ = hs.issued();
        lastHwDropped_ = hs.dropped();
    }
    finishPollGuardrails(issued, dropped, hwIssued, hwDropped);
}

void
AdoreRuntime::finishPollGuardrails(std::uint64_t issued_delta,
                                   std::uint64_t dropped_delta,
                                   std::uint64_t hw_issued_delta,
                                   std::uint64_t hw_dropped_delta)
{
    guardrails_->noteMemPressure(issued_delta, dropped_delta,
                                 hw_issued_delta, hw_dropped_delta);
    guardrails_->endPoll();

    // Apply sampling-rate backoff.  The poll runs inside a Cpu periodic
    // hook and the Cpu recomputes its event watermark after hooks, so
    // the retimed interval takes effect from the next sample.  In
    // free-running mode the worker cannot touch the sampler; it
    // publishes the wanted interval and main applies it at its poll.
    Cycle want = baseSamplingInterval_ * guardrails_->samplingMultiplier();
    if (deferredCommits())
        service_->publishSamplingInterval(want);
    else if (sampler_.interval() != want)
        sampler_.setInterval(want);
}

void
AdoreRuntime::guardrailProfitabilityCheck(const PhaseInfo &phase)
{
    // Per-trace monitoring: attribute the in-pool phase to the patched
    // trace whose pool range holds the phase's PCcenter, newest batch
    // first (pool ranges are unique per commit).  In free-running mode
    // the worker consults its shadow patch set (the code image belongs
    // to the main thread) and defers the unpatch via the service.
    bool deferred = deferredCommits();
    for (std::size_t bi = batches_.size(); bi-- > 0;) {
        OptimizedBatch &batch = batches_[bi];
        if (batch.reverted)
            continue;
        for (const PatchedTrace &t : batch.traces) {
            if (phase.pcCenter < t.poolStart ||
                phase.pcCenter >= t.poolEnd) {
                continue;
            }
            bool patched = deferred ? service_->shadowRevertible(t.head)
                                    : cpu_.code().isPatched(t.head);
            if (!patched)
                return;  // already individually reverted
            if (phase.cpi <= batch.cpiBefore *
                                 config_.guardrails.revertCpiRatio) {
                return;  // profitable enough: leave it in
            }
            if (batch.revertStage == 0) {
                // Stage 1: surgically revert only the offending trace.
                batch.revertStage = 1;
                if (deferred) {
                    service_->requestUnpatch(bi, {t.head}, false,
                                             UnpatchKind::Staged);
                } else if (unpatchHead(batch, t.head, false)) {
                    guardrails_->noteStagedRevert(t.head);
                }
            } else {
                // Stage 2: the batch regressed again — revert the rest.
                if (deferred) {
                    std::vector<Addr> heads;
                    for (const PatchedTrace &u : batch.traces) {
                        if (service_->shadowRevertible(u.head))
                            heads.push_back(u.head);
                    }
                    batch.revertStage = 2;
                    if (!heads.empty()) {
                        service_->requestUnpatch(bi, std::move(heads),
                                                 false, UnpatchKind::Full);
                    }
                } else {
                    std::uint64_t n = 0;
                    Addr first = t.head;
                    for (const PatchedTrace &u : batch.traces) {
                        if (unpatchHead(batch, u.head, false))
                            ++n;
                    }
                    batch.revertStage = 2;
                    guardrails_->noteFullRevert(first, n);
                }
            }
            return;
        }
    }
}

std::unordered_map<Addr, AdoreRuntime::DearAgg>
AdoreRuntime::aggregateDear(const std::vector<Sample> &samples) const
{
    std::unordered_map<Addr, DearAgg> agg;
    DearRecord prev{};
    for (const Sample &sample : samples) {
        const DearRecord &d = sample.dear;
        if (!d.valid)
            continue;
        // The DEAR latches the most recent event; identical consecutive
        // captures are the same event observed twice.
        if (prev.valid && prev.pc == d.pc && prev.missAddr == d.missAddr &&
            prev.latency == d.latency) {
            continue;
        }
        prev = d;
        DearAgg &a = agg[d.pc];
        a.totalLatency += d.latency;
        ++a.count;
    }
    return agg;
}

Addr
AdoreRuntime::commitTrace(const Trace &trace,
                          const std::vector<Bundle> &init_bundles)
{
    std::size_t total = init_bundles.size() + trace.bundles.size() + 1;

    // Chaos channel: the live patch itself may fail (e.g. the real
    // system's mprotect/bundle-swap race).  Checked before allocation
    // so a refused patch leaks no pool space.  Recoverable: the trace
    // is skipped and may be retried on a later phase.
    if (config_.faultPlan && config_.faultPlan->patchFails()) {
        ++stats_.tracesPatchFailed;
        if (guardrails_)
            guardrails_->notePatchFailed(trace.startAddr);
        return CodeImage::badAddr;
    }

    Addr base = writeTraceToPool(trace, init_bundles);
    if (base == CodeImage::badAddr) {
        // Trace-pool exhaustion: reject, record, continue running.
        ++stats_.tracesRejectedPoolFull;
        if (guardrails_) {
            guardrails_->notePoolExhausted(trace.startAddr);
        } else if (events_) {
            events_->emit(observe::GuardrailEvent{
                "pool-exhausted", trace.startAddr,
                static_cast<std::uint64_t>(total)});
        }
        return CodeImage::badAddr;
    }

    if (events_) {
        events_->emit(observe::TracePatchedEvent{
            trace.startAddr, base,
            static_cast<std::uint32_t>(trace.bundles.size()),
            static_cast<std::uint32_t>(init_bundles.size())});
    }
    return base;
}

Addr
AdoreRuntime::writeTraceToPool(const Trace &trace,
                               const std::vector<Bundle> &init_bundles)
{
    CodeImage &code = cpu_.code();
    std::size_t total = init_bundles.size() + trace.bundles.size() + 1;

    std::uint64_t bumps_before = code.regionBumpCount();
    Addr base = code.tryAllocTrace(total);
    if (base == CodeImage::badAddr)
        return CodeImage::badAddr;

    Addr body_start =
        base + init_bundles.size() * isa::bundleBytes;

    for (std::size_t i = 0; i < init_bundles.size(); ++i)
        code.writeBundle(base + i * isa::bundleBytes, init_bundles[i]);

    for (std::size_t i = 0; i < trace.bundles.size(); ++i) {
        Bundle bundle = trace.bundles[i];
        if (trace.isLoop &&
            static_cast<int>(i) == trace.backedgeBundle) {
            // Retarget the backedge at the in-pool body start (the
            // init code runs only on trace entry).
            bundle.slot(trace.backedgeSlot).target = body_start;
        }
        if (std::find(trace.elidedBranches.begin(),
                      trace.elidedBranches.end(),
                      static_cast<int>(i)) != trace.elidedBranches.end()) {
            int bslot = bundle.branchSlot();
            if (bslot >= 0) {
                Insn nop = build::nop();
                nop.slot = SlotKind::B;
                bundle.slot(bslot) = nop;
            }
        }
        code.writeBundle(body_start + i * isa::bundleBytes, bundle);
    }

    // Exit bundle: resume original code after the trace.
    Bundle exit_bundle;
    exit_bundle.add(build::brAlways(trace.fallthroughAddr()));
    code.writeBundle(body_start + trace.bundles.size() * isa::bundleBytes,
                     exit_bundle);

    code.patch(trace.startAddr, base);
    stats_.regionGenBumps += code.regionBumpCount() - bumps_before;
    return base;
}

void
AdoreRuntime::revertBatch(OptimizedBatch &batch)
{
    if (deferredCommits()) {
        // Free-running: defer the unpatches to the main thread; the
        // bookkeeping completes when the ack comes back.  Marking the
        // batch reverted now prevents a re-trigger on the next window.
        std::size_t bi = &batch - batches_.data();
        std::vector<Addr> heads;
        for (const PatchedTrace &t : batch.traces) {
            blacklist_.insert(t.head);
            if (service_->shadowRevertible(t.head))
                heads.push_back(t.head);
        }
        batch.reverted = true;
        ++stats_.phasesReverted;
        if (!heads.empty()) {
            service_->requestUnpatch(bi, std::move(heads), true,
                                     UnpatchKind::Legacy);
        }
        return;
    }

    // Charge per still-patched head: each unpatch is its own brief
    // stop-and-copy pause, exactly like the patch that installed it
    // (unpatchHead charges patchCyclesPerTrace per head it reverts).
    for (const PatchedTrace &t : batch.traces) {
        if (!unpatchHead(batch, t.head, true))
            blacklist_.insert(t.head);  // keep blacklist-all semantics
    }
    if (!batch.reverted) {
        batch.reverted = true;
        ++stats_.phasesReverted;
    }
}

bool
AdoreRuntime::unpatchHead(OptimizedBatch &batch, Addr head, bool blacklist)
{
    if (!cpu_.code().isPatched(head))
        return false;
    std::uint64_t bumps_before = cpu_.code().regionBumpCount();
    cpu_.code().unpatch(head);
    stats_.regionGenBumps += cpu_.code().regionBumpCount() - bumps_before;
    ++stats_.tracesUnpatched;
    if (events_)
        events_->emit(observe::TraceRevertedEvent{head});
    if (blacklist || !guardrails_)
        blacklist_.insert(head);
    else
        guardrails_->noteTraceReverted(head);
    cpu_.chargeCycles(config_.patchCyclesPerTrace);

    bool anyPatched = false;
    for (const PatchedTrace &t : batch.traces) {
        if (cpu_.code().isPatched(t.head)) {
            anyPatched = true;
            break;
        }
    }
    if (!anyPatched && !batch.reverted) {
        batch.reverted = true;
        ++stats_.phasesReverted;
    }
    return true;
}

std::vector<Addr>
AdoreRuntime::patchedHeadsOf(std::size_t index) const
{
    std::vector<Addr> out;
    if (index >= batches_.size())
        return out;
    for (const PatchedTrace &t : batches_[index].traces) {
        if (cpu_.code().isPatched(t.head))
            out.push_back(t.head);
    }
    return out;
}

bool
AdoreRuntime::revertTrace(Addr head)
{
    // External revert API: the worker owns the batch bookkeeping while
    // a free-running service is live, so refuse rather than race.
    if (deferredCommits() && service_->running())
        return false;
    // Newest batch first: a head whose backoff expired may have been
    // re-optimized into a later batch.
    for (auto it = batches_.rbegin(); it != batches_.rend(); ++it) {
        for (const PatchedTrace &t : it->traces) {
            if (t.head == head)
                return unpatchHead(*it, head, true);
        }
    }
    return false;
}

bool
AdoreRuntime::revertBatchAt(std::size_t index)
{
    if (deferredCommits() && service_->running())
        return false;  // see revertTrace
    if (index >= batches_.size())
        return false;
    OptimizedBatch &batch = batches_[index];
    if (batch.reverted)
        return false;
    bool any = false;
    for (const PatchedTrace &t : batch.traces) {
        if (unpatchHead(batch, t.head, true))
            any = true;
    }
    return any;
}

void
AdoreRuntime::cancelPhaseByWatchdog(Addr pc_center, std::uint64_t magnitude)
{
    ++stats_.phasesWatchdogCancelled;
    if (guardrails_) {
        guardrails_->noteWatchdogFire(pc_center, magnitude);
    } else if (events_) {
        events_->emit(observe::GuardrailEvent{"watchdog-cancel", pc_center,
                                              magnitude});
    }
}

void
AdoreRuntime::optimizePhase(Cycle now)
{
    (void)now;
    const Addr pcCenter = phaseDetector_.current().pcCenter;

    // Deterministic watchdog layer: an injected optimizer stall beyond
    // the virtual-cycle deadline cancels the phase before any work is
    // done and degrades via the guardrail throttle.  Applies in every
    // mode, so the chaos schedule replays identically.
    if (config_.faultPlan) {
        std::uint64_t stall = config_.faultPlan->optimizerStall();
        if (stall > config_.watchdogDeadlineCycles) {
            cancelPhaseByWatchdog(pcCenter, stall);
            return;
        }
    }

    bool deferred = deferredCommits();
    if (deferred)
        service_->beginPhase();

    std::vector<Sample> samples = ueb_.flatten();
    std::vector<Trace> traces;
    if (deferred) {
        // The trace selector walks the code image, which the main
        // thread mutates at its safe points: hold the patch lock for
        // the walk (the rest of the phase works on Trace copies).
        auto lock = service_->lockPatches();
        traces = traceSelector_.select(samples);
    } else {
        traces = traceSelector_.select(samples);
    }
    auto dear = aggregateDear(samples);

    OptimizedBatch batch;
    batch.cpiBefore = phaseDetector_.current().cpi;

    std::vector<CommitPlanItem> planItems;
    bool any_patched = false;
    bool any_prefetched = false;
    bool cancelled = false;

    // Auto-throttle: under bus saturation the guardrails damp (1) or
    // disable (0) prefetch generation per trace.
    int load_cap = config_.maxPrefetchLoadsPerTrace;
    if (guardrails_)
        load_cap = guardrails_->prefetchLoadCap(load_cap);

    for (Trace &trace : traces) {
        // Host-time watchdog (free-running): honor a cancellation
        // requested by the main thread between traces.
        if (deferred && service_->cancelled()) {
            cancelled = true;
            break;
        }
        if (config_.perTraceTestHook)
            config_.perTraceTestHook(trace.startAddr);

        ++stats_.tracesSelected;
        if (trace.isLoop)
            ++stats_.loopTraces;

        if (!trace.isLoop &&
            trace.bundles.size() < config_.minNonLoopTraceBundles) {
            continue;  // too small to gain anything from relayout
        }

        bool alreadyPatched =
            deferred ? service_->shadowPatched(trace.startAddr)
                     : cpu_.code().isPatched(trace.startAddr);
        if (alreadyPatched) {
            ++stats_.tracesSkippedPatched;
            continue;
        }
        if (blacklist_.count(trace.startAddr)) {
            continue;  // previously reverted as nonprofitable
        }
        if (guardrails_ && !guardrails_->allowOptimize(trace.startAddr)) {
            continue;  // reverted head still in re-optimization backoff
        }
        if (config_.swpLoopFilter &&
            config_.swpLoopFilter(trace.startAddr)) {
            // Software-pipelined loop with rotating registers: the
            // current optimizer cannot insert prefetches there
            // (Section 4.3).
            ++stats_.tracesSkippedSwp;
            continue;
        }
        // Traces that already contain compiler-generated lfetch (O3
        // binaries): the static pass covers the direct references, so
        // only indirect / pointer-chasing loads remain for the runtime
        // prefetcher.  When nothing remains, the trace is skipped
        // entirely (Section 4.3's "already have compiler generated
        // lfetch").
        bool has_static_lfetch = trace.containsLfetch();

        if (!config_.insertPrefetches)
            continue;

        PrefetchGenResult gen;
        bool throttled_off = guardrails_ && load_cap == 0;
        if (trace.isLoop && !throttled_off) {
            // Delinquent loads of this trace, hottest first (top-3).
            std::vector<DelinquentLoad> loads;
            DependenceSlicer slicer(trace, events_);
            for (const auto &[pc, agg] : dear) {
                // Host-time watchdog: also honored mid-slice, so a
                // stalled classification can't wedge the worker.
                if (deferred && service_->cancelled()) {
                    cancelled = true;
                    break;
                }
                int bidx = trace.bundleIndexOfOrigPc(pc);
                if (bidx < 0)
                    continue;
                DelinquentLoad dl;
                dl.origPc = pc;
                dl.pos = {bidx, isa::slotOf(pc)};
                dl.totalLatency = agg.totalLatency;
                dl.sampleCount = agg.count;
                const Bundle &bundle =
                    trace.bundles[static_cast<std::size_t>(bidx)];
                if (dl.pos.slot >= bundle.size() ||
                    !bundle.slot(dl.pos.slot).isLoad()) {
                    continue;
                }
                dl.slice = slicer.classify(dl.pos);
                loads.push_back(dl);
            }
            if (cancelled)
                break;
            std::sort(loads.begin(), loads.end(),
                      [](const DelinquentLoad &a, const DelinquentLoad &b) {
                          if (a.totalLatency != b.totalLatency)
                              return a.totalLatency > b.totalLatency;
                          return a.origPc < b.origPc;
                      });
            if (loads.size() > static_cast<std::size_t>(load_cap))
                loads.resize(static_cast<std::size_t>(load_cap));

            if (events_) {
                for (const DelinquentLoad &dl : loads) {
                    events_->emit(observe::DelinquentLoadEvent{
                        dl.origPc, refPatternName(dl.slice.pattern),
                        dl.avgLatency(), dl.sampleCount,
                        dl.slice.strideBytes});
                }
            }

            // Issue-limited body estimate: two bundles per cycle plus
            // loop-control overhead.
            auto body_cycles = static_cast<std::uint32_t>(
                1 + trace.bundles.size() / 2);
            gen = prefetchGen_.generate(trace, loads, body_cycles,
                                        has_static_lfetch);

            stats_.directPrefetches += gen.directPrefetches;
            stats_.indirectPrefetches += gen.indirectPrefetches;
            stats_.pointerPrefetches += gen.pointerPrefetches;
            stats_.loadsSkippedNoRegs += gen.loadsSkippedNoRegs;
            stats_.loadsSkippedUnknown += gen.loadsSkippedUnknown;
            stats_.bundlesInserted += gen.bundlesInserted;
            stats_.slotsFilled += gen.slotsFilled;
            if (gen.totalPrefetchedLoads() > 0)
                any_prefetched = true;
        }

        if (has_static_lfetch && gen.totalPrefetchedLoads() == 0) {
            // Fully covered by the compiler: nothing to add.
            ++stats_.tracesSkippedLfetch;
            continue;
        }

        if (deferred) {
            // Plan the commit; main applies it at its next safe point.
            // The injected patch-failure channel is drawn here so it
            // stays on the worker thread (same decision point as the
            // inline path: once per commit-worthy trace).
            if (config_.faultPlan && config_.faultPlan->patchFails()) {
                ++stats_.tracesPatchFailed;
                if (guardrails_)
                    guardrails_->notePatchFailed(trace.startAddr);
                continue;
            }
            planItems.push_back({trace, gen.initBundles});
            continue;
        }

        Addr base = commitTrace(trace, gen.initBundles);
        if (base == CodeImage::badAddr)
            continue;  // patch failed or pool exhausted: recoverable
        std::size_t total =
            gen.initBundles.size() + trace.bundles.size() + 1;
        batch.traces.push_back(
            {trace.startAddr, base,
             base + total * isa::bundleBytes});
        ++stats_.tracesPatched;
        any_patched = true;
        cpu_.chargeCycles(config_.patchCyclesPerTrace);
    }

    if (deferred) {
        service_->endPhase();
        if (cancelled) {
            // Degrade to unoptimized execution: discard the half-built
            // plan; nothing was committed.
            cancelPhaseByWatchdog(pcCenter, config_.watchdogDeadlineNs);
        } else if (!planItems.empty()) {
            service_->requestCommit(batch.cpiBefore, std::move(planItems));
        }
        if (any_prefetched)
            ++stats_.phasesPrefetched;
        return;
    }

    if (any_patched) {
        ++stats_.phasesOptimized;
        batches_.push_back(std::move(batch));
    }
    if (any_prefetched)
        ++stats_.phasesPrefetched;
}

} // namespace adore
