/**
 * @file
 * Dependence slicing over a loop trace to classify a delinquent load's
 * data-reference pattern (paper Section 3.2, Fig. 5):
 *
 *  - *direct array*: the load's base register advances by compile-time
 *    constants each iteration (post-increments / adds); the per-iteration
 *    stride is their sum;
 *  - *indirect array*: the base is recomputed each iteration from an
 *    index *value* produced by another load whose own base is strided
 *    (the two-level reference of Fig. 5B); the address transform chain
 *    (shladd/add/adds) is captured for regeneration;
 *  - *pointer chasing*: the base derives from a register that is
 *    (transitively) defined by a load whose address depends on that same
 *    register's previous value — a recurrence through memory (Fig. 5C);
 *  - *unknown*: anything else, e.g. an address produced through an
 *    fp->int conversion (getf) or a register with conflicting
 *    definitions.  ADORE inserts no prefetch for these (the vpr/lucas/
 *    gap failure mode the paper reports).
 */

#ifndef ADORE_RUNTIME_SLICER_HH
#define ADORE_RUNTIME_SLICER_HH

#include <cstdint>
#include <vector>

#include "observe/event_trace.hh"
#include "runtime/trace.hh"

namespace adore
{

enum class RefPattern : std::uint8_t
{
    Direct,
    Indirect,
    PointerChase,
    Unknown,
};

const char *refPatternName(RefPattern pattern);

/** Position of an instruction within a trace. */
struct InsnPos
{
    int bundle = -1;
    int slot = -1;

    bool valid() const { return bundle >= 0; }

    bool
    before(const InsnPos &other) const
    {
        return bundle < other.bundle ||
               (bundle == other.bundle && slot < other.slot);
    }
};

struct SliceResult
{
    RefPattern pattern = RefPattern::Unknown;
    bool fp = false;           ///< delinquent load is an FP load
    std::uint8_t loadSize = 8;

    // Direct.
    std::uint8_t baseReg = 0;
    std::int64_t strideBytes = 0;

    // Indirect.
    std::uint8_t level1Cursor = 0;      ///< strided index-load base
    std::int64_t level1StrideBytes = 0;
    std::uint8_t level1Size = 8;        ///< index element size
    /** Address-transform instructions from index value to the
     *  delinquent load's address, in dependence order. */
    std::vector<Insn> transform;
    std::uint8_t transformInputReg = 0; ///< the index-value register

    // Pointer chasing.
    std::uint8_t recurrentReg = 0;
    InsnPos recurrentDefPos;  ///< the load that advances the pointer
};

class DependenceSlicer
{
  public:
    /** @p events (nullable) receives a SliceClassified decision event
     *  per classify() call. */
    explicit DependenceSlicer(const Trace &trace,
                              observe::EventTrace *events = nullptr);

    /** Classify the load at @p pos (must be a load slot). */
    SliceResult classify(InsnPos pos) const;

    /** All writes to integer register @p reg within the body. */
    const std::vector<InsnPos> &defsOf(std::uint8_t reg) const;

  private:
    struct Def
    {
        InsnPos pos;
        const Insn *insn;
    };

    /** classify() minus the decision-event emission. */
    SliceResult classifyImpl(InsnPos pos) const;

    const std::vector<Def> &defList(std::uint8_t reg) const;

    /** True when @p reg is never written in the body (loop-invariant). */
    bool invariant(std::uint8_t reg) const;

    /**
     * If every def of @p reg is a constant self-increment, return true
     * and the per-iteration stride.
     */
    bool constStride(std::uint8_t reg, std::int64_t &stride) const;

    /**
     * The definition of @p reg that reaches a use at @p pos: the latest
     * def strictly before @p pos, or (loop-carried) the last def in the
     * body.  nullptr when the register is invariant.
     */
    const Def *reachingDef(std::uint8_t reg, InsnPos pos) const;

    /**
     * Whether @p reg's value chain (through ALU ops *and* loads — a
     * recurrence through memory) reaches @p target within @p depth.
     */
    bool chainReaches(std::uint8_t reg, InsnPos pos, std::uint8_t target,
                      int depth) const;

    const Trace &trace_;
    observe::EventTrace *events_;
    std::vector<std::vector<Def>> defs_;
    std::vector<std::vector<InsnPos>> defPositions_;
};

} // namespace adore

#endif // ADORE_RUNTIME_SLICER_HH
