#include "runtime/slicer.hh"

#include "support/logging.hh"

namespace adore
{

const char *
refPatternName(RefPattern pattern)
{
    switch (pattern) {
      case RefPattern::Direct: return "direct";
      case RefPattern::Indirect: return "indirect";
      case RefPattern::PointerChase: return "pointer-chasing";
      case RefPattern::Unknown: return "unknown";
    }
    return "?";
}

DependenceSlicer::DependenceSlicer(const Trace &trace,
                                   observe::EventTrace *events)
    : trace_(trace),
      events_(events),
      defs_(isa::numIntRegs),
      defPositions_(isa::numIntRegs)
{
    for (std::size_t b = 0; b < trace.bundles.size(); ++b) {
        const Bundle &bundle = trace.bundles[b];
        for (int s = 0; s < bundle.size(); ++s) {
            const Insn &insn = bundle.slot(s);
            InsnPos pos{static_cast<int>(b), s};
            auto note = [&](std::uint8_t reg) {
                if (reg == 0 || reg >= isa::numIntRegs)
                    return;
                defs_[reg].push_back({pos, &insn});
                defPositions_[reg].push_back(pos);
            };
            switch (insn.op) {
              case Opcode::Add:
              case Opcode::Sub:
              case Opcode::Addi:
              case Opcode::Shladd:
              case Opcode::Mov:
              case Opcode::Movi:
              case Opcode::And:
              case Opcode::Or:
              case Opcode::Xor:
              case Opcode::Shl:
              case Opcode::Shr:
              case Opcode::Getf:
                note(insn.rd);
                break;
              case Opcode::Ld:
              case Opcode::LdS:
                note(insn.rd);
                if (insn.postinc)
                    note(insn.rs1);
                break;
              case Opcode::Ldf:
              case Opcode::St:
              case Opcode::Stf:
              case Opcode::Lfetch:
                if (insn.postinc)
                    note(insn.rs1);
                break;
              default:
                break;
            }
        }
    }
}

const std::vector<InsnPos> &
DependenceSlicer::defsOf(std::uint8_t reg) const
{
    return defPositions_[reg];
}

const std::vector<DependenceSlicer::Def> &
DependenceSlicer::defList(std::uint8_t reg) const
{
    return defs_[reg];
}

bool
DependenceSlicer::invariant(std::uint8_t reg) const
{
    return reg == 0 || defs_[reg].empty();
}

bool
DependenceSlicer::constStride(std::uint8_t reg, std::int64_t &stride) const
{
    const auto &list = defs_[reg];
    if (list.empty())
        return false;
    std::int64_t sum = 0;
    for (const Def &def : list) {
        const Insn &insn = *def.insn;
        if (insn.isMemRef() && insn.postinc && insn.rs1 == reg) {
            // Post-increment walking reference.  A load whose *dest* is
            // also reg would not be a constant increment; reject it.
            if (insn.isLoad() && insn.op != Opcode::Ldf &&
                insn.rd == reg) {
                return false;
            }
            sum += insn.postinc;
            continue;
        }
        if (insn.op == Opcode::Addi && insn.rd == reg &&
            insn.rs1 == reg) {
            sum += insn.imm;
            continue;
        }
        return false;
    }
    stride = sum;
    return stride != 0;
}

const DependenceSlicer::Def *
DependenceSlicer::reachingDef(std::uint8_t reg, InsnPos pos) const
{
    const auto &list = defs_[reg];
    if (list.empty())
        return nullptr;
    const Def *best = nullptr;
    for (const Def &def : list) {
        if (def.pos.before(pos) &&
            (!best || best->pos.before(def.pos))) {
            best = &def;
        }
    }
    if (best)
        return best;
    // No def earlier in the body: the value is loop-carried from the
    // last def of the previous iteration.
    best = &list[0];
    for (const Def &def : list)
        if (best->pos.before(def.pos))
            best = &def;
    return best;
}

bool
DependenceSlicer::chainReaches(std::uint8_t reg, InsnPos pos,
                               std::uint8_t target, int depth) const
{
    if (reg == target)
        return true;
    if (depth == 0 || invariant(reg))
        return false;
    const Def *def = reachingDef(reg, pos);
    if (!def)
        return false;
    const Insn &insn = *def->insn;
    switch (insn.op) {
      case Opcode::Addi:
      case Opcode::Mov:
        return chainReaches(insn.rs1, def->pos, target, depth - 1);
      case Opcode::Add:
      case Opcode::Shladd:
        return chainReaches(insn.rs1, def->pos, target, depth - 1) ||
               chainReaches(insn.rs2, def->pos, target, depth - 1);
      case Opcode::Ld:
      case Opcode::LdS:
        // A recurrence through memory: follow the load's address.
        return chainReaches(insn.rs1, def->pos, target, depth - 1);
      default:
        return false;
    }
}

SliceResult
DependenceSlicer::classify(InsnPos pos) const
{
    SliceResult out = classifyImpl(pos);
    if (events_) {
        events_->emit(observe::SliceClassifiedEvent{
            pos.bundle, pos.slot, refPatternName(out.pattern),
            out.strideBytes});
    }
    return out;
}

SliceResult
DependenceSlicer::classifyImpl(InsnPos pos) const
{
    SliceResult out;
    panic_if(pos.bundle < 0 ||
                 pos.bundle >= static_cast<int>(trace_.bundles.size()),
             "classify: position outside trace");
    const Insn &load =
        trace_.bundles[static_cast<std::size_t>(pos.bundle)].slot(pos.slot);
    panic_if(!load.isLoad(), "classify on a non-load");

    out.fp = load.op == Opcode::Ldf;
    out.loadSize = load.size;

    std::uint8_t base = load.rs1;
    out.baseReg = base;

    // Case 1: constant-stride base -> direct array reference.
    std::int64_t stride = 0;
    if (constStride(base, stride)) {
        out.pattern = RefPattern::Direct;
        out.strideBytes = stride;
        return out;
    }

    if (invariant(base))
        return out;  // loop-invariant address: nothing to prefetch

    // Case 2/3: follow the reaching-definition chain of the address,
    // collecting the transform (adds/shladds) backwards, looking for
    // either an index-producing load (indirect) or a memory recurrence
    // (pointer chasing).
    std::uint8_t cur = base;
    InsnPos cur_pos = pos;
    std::vector<Insn> transform;
    for (int depth = 0; depth < 4; ++depth) {
        if (invariant(cur))
            return out;
        // A register whose every in-body def is a constant increment
        // deep in the chain: the address is a strided cursor plus a
        // constant -> direct.
        std::int64_t chain_stride = 0;
        if (depth > 0 && constStride(cur, chain_stride)) {
            out.pattern = RefPattern::Direct;
            out.strideBytes = chain_stride;
            out.baseReg = base;
            return out;
        }

        const Def *dd = reachingDef(cur, cur_pos);
        if (!dd)
            return out;
        const Insn &def = *dd->insn;

        switch (def.op) {
          case Opcode::Addi:
            transform.push_back(def);
            cur = def.rs1;
            cur_pos = dd->pos;
            break;
          case Opcode::Mov:
            cur = def.rs1;
            cur_pos = dd->pos;
            break;
          case Opcode::Shladd:
            // rd = rs1 << k + rs2: the variable input is rs1; rs2 must
            // be loop-invariant for the transform to be regenerable.
            if (!invariant(def.rs2))
                return out;
            transform.push_back(def);
            cur = def.rs1;
            cur_pos = dd->pos;
            break;
          case Opcode::Add: {
            std::uint8_t variable;
            Insn normalized = def;
            if (invariant(def.rs2)) {
                variable = def.rs1;
            } else if (invariant(def.rs1)) {
                // Normalize so rs1 is always the variable operand; the
                // generator rewires rs1 when regenerating.
                variable = def.rs2;
                normalized.rs1 = def.rs2;
                normalized.rs2 = def.rs1;
            } else {
                return out;
            }
            transform.push_back(normalized);
            cur = variable;
            cur_pos = dd->pos;
            break;
          }
          case Opcode::Ld:
          case Opcode::LdS: {
            // cur is produced by a load.  Either a memory recurrence
            // (pointer chasing) or an index value (indirect).
            if (chainReaches(def.rs1, dd->pos, cur, 3) ||
                chainReaches(def.rs1, dd->pos, base, 3)) {
                out.pattern = RefPattern::PointerChase;
                out.recurrentReg = cur;
                out.recurrentDefPos = dd->pos;
                return out;
            }
            std::int64_t l1stride = 0;
            if (constStride(def.rs1, l1stride)) {
                out.pattern = RefPattern::Indirect;
                out.level1Cursor = def.rs1;
                out.level1StrideBytes = l1stride;
                out.level1Size = def.size;
                out.transformInputReg = cur;
                // Dependence order: from index value to address.
                out.transform.assign(transform.rbegin(),
                                     transform.rend());
                return out;
            }
            return out;
          }
          case Opcode::Getf:
            // fp->int conversion in the address computation: the
            // runtime cannot derive a stride (paper Section 4.3).
            return out;
          default:
            return out;
        }
    }
    return out;
}

} // namespace adore
