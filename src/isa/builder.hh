/**
 * @file
 * Factory helpers for building decoded instructions.  Used by the compiler
 * code generator, the ADORE prefetch generator, and the tests.
 */

#ifndef ADORE_ISA_BUILDER_HH
#define ADORE_ISA_BUILDER_HH

#include "isa/insn.hh"

namespace adore::build
{

inline Insn
nop()
{
    Insn i;
    i.op = Opcode::Nop;
    return i;
}

inline Insn
add(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2)
{
    Insn i;
    i.op = Opcode::Add;
    i.rd = rd;
    i.rs1 = rs1;
    i.rs2 = rs2;
    return i;
}

inline Insn
sub(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2)
{
    Insn i;
    i.op = Opcode::Sub;
    i.rd = rd;
    i.rs1 = rs1;
    i.rs2 = rs2;
    return i;
}

/** adds rd = imm, rs1 */
inline Insn
addi(std::uint8_t rd, std::int64_t imm, std::uint8_t rs1)
{
    Insn i;
    i.op = Opcode::Addi;
    i.rd = rd;
    i.imm = imm;
    i.rs1 = rs1;
    return i;
}

/** shladd rd = rs1 << count + rs2 */
inline Insn
shladd(std::uint8_t rd, std::uint8_t rs1, std::uint8_t count,
       std::uint8_t rs2)
{
    Insn i;
    i.op = Opcode::Shladd;
    i.rd = rd;
    i.rs1 = rs1;
    i.count = count;
    i.rs2 = rs2;
    return i;
}

inline Insn
mov(std::uint8_t rd, std::uint8_t rs1)
{
    Insn i;
    i.op = Opcode::Mov;
    i.rd = rd;
    i.rs1 = rs1;
    return i;
}

inline Insn
movi(std::uint8_t rd, std::int64_t imm)
{
    Insn i;
    i.op = Opcode::Movi;
    i.rd = rd;
    i.imm = imm;
    return i;
}

inline Insn
cmp(Opcode op, std::uint8_t pd, std::uint8_t rs1, std::uint8_t rs2)
{
    Insn i;
    i.op = op;
    i.pd = pd;
    i.rs1 = rs1;
    i.rs2 = rs2;
    return i;
}

inline Insn
ld(std::uint8_t size, std::uint8_t rd, std::uint8_t base,
   std::int32_t postinc = 0)
{
    Insn i;
    i.op = Opcode::Ld;
    i.size = size;
    i.rd = rd;
    i.rs1 = base;
    i.postinc = postinc;
    return i;
}

inline Insn
lds(std::uint8_t size, std::uint8_t rd, std::uint8_t base,
    std::int32_t postinc = 0)
{
    Insn i = ld(size, rd, base, postinc);
    i.op = Opcode::LdS;
    return i;
}

inline Insn
st(std::uint8_t size, std::uint8_t base, std::uint8_t rs2,
   std::int32_t postinc = 0)
{
    Insn i;
    i.op = Opcode::St;
    i.size = size;
    i.rs1 = base;
    i.rs2 = rs2;
    i.postinc = postinc;
    return i;
}

inline Insn
ldf(std::uint8_t size, std::uint8_t fd, std::uint8_t base,
    std::int32_t postinc = 0)
{
    Insn i;
    i.op = Opcode::Ldf;
    i.size = size;
    i.fd = fd;
    i.rs1 = base;
    i.postinc = postinc;
    return i;
}

inline Insn
stf(std::uint8_t size, std::uint8_t base, std::uint8_t fs2,
    std::int32_t postinc = 0)
{
    Insn i;
    i.op = Opcode::Stf;
    i.size = size;
    i.rs1 = base;
    i.fs2 = fs2;
    i.postinc = postinc;
    return i;
}

inline Insn
lfetch(std::uint8_t base, std::int32_t postinc = 0)
{
    Insn i;
    i.op = Opcode::Lfetch;
    i.rs1 = base;
    i.postinc = postinc;
    return i;
}

inline Insn
getf(std::uint8_t rd, std::uint8_t fs1)
{
    Insn i;
    i.op = Opcode::Getf;
    i.rd = rd;
    i.fs1 = fs1;
    return i;
}

inline Insn
setf(std::uint8_t fd, std::uint8_t rs1)
{
    Insn i;
    i.op = Opcode::Setf;
    i.fd = fd;
    i.rs1 = rs1;
    return i;
}

inline Insn
fma(std::uint8_t fd, std::uint8_t fs1, std::uint8_t fs2, std::uint8_t fs3)
{
    Insn i;
    i.op = Opcode::Fma;
    i.fd = fd;
    i.fs1 = fs1;
    i.fs2 = fs2;
    i.fs3 = fs3;
    return i;
}

inline Insn
fbin(Opcode op, std::uint8_t fd, std::uint8_t fs1, std::uint8_t fs2)
{
    Insn i;
    i.op = op;
    i.fd = fd;
    i.fs1 = fs1;
    i.fs2 = fs2;
    return i;
}

inline Insn
br(std::uint8_t qp, Addr target)
{
    Insn i;
    i.op = Opcode::Br;
    i.qp = qp;
    i.target = target;
    return i;
}

inline Insn
brAlways(Addr target)
{
    return br(0, target);
}

inline Insn
brCall(std::uint8_t breg, Addr target)
{
    Insn i;
    i.op = Opcode::BrCall;
    i.count = breg;
    i.target = target;
    return i;
}

inline Insn
brRet(std::uint8_t breg)
{
    Insn i;
    i.op = Opcode::BrRet;
    i.count = breg;
    return i;
}

inline Insn
halt()
{
    Insn i;
    i.op = Opcode::Halt;
    return i;
}

} // namespace adore::build

#endif // ADORE_ISA_BUILDER_HH
