#include "isa/bundle.hh"

#include <sstream>

#include "support/logging.hh"

namespace adore
{

bool
Bundle::tryAdd(Insn insn)
{
    if (full())
        return false;
    // A branch must be the last slot: once a branch is present nothing may
    // follow it.
    if (hasBranch())
        return false;

    SlotKind kind = insn.slot;
    if (!Insn::opAllowsSlot(insn.op, kind))
        kind = naturalSlot(insn.op);

    // For A-type ops prefer an I slot, keeping M capacity for memory ops.
    if (Insn::opAllowsSlot(insn.op, SlotKind::I) &&
        Insn::opAllowsSlot(insn.op, SlotKind::M)) {
        kind = canAccept(SlotKind::I) ? SlotKind::I : SlotKind::M;
    }

    if (!canAccept(kind))
        return false;

    insn.slot = kind;
    insn.predecode();
    slots_[static_cast<size_t>(n_)] = insn;
    ++n_;
    branchFree_ = branchFree_ && !insn.isBranch();
    return true;
}

void
Bundle::add(Insn insn)
{
    panic_if(!tryAdd(insn), "illegal bundle slot assignment for %s",
             mnemonic(insn).c_str());
}

void
Bundle::padWithNops()
{
    while (n_ < numSlots) {
        Insn nop;
        nop.op = Opcode::Nop;
        nop.slot = canAccept(SlotKind::I) ? SlotKind::I : SlotKind::M;
        nop.predecode();
        slots_[static_cast<size_t>(n_)] = nop;
        ++n_;
    }
}

void
Bundle::predecodeAll()
{
    for (int i = 0; i < n_; ++i)
        slots_[static_cast<size_t>(i)].predecode();
    branchFree_ = branchSlot() < 0;
}

int
Bundle::countKind(SlotKind kind) const
{
    int c = 0;
    for (int i = 0; i < n_; ++i) {
        const Insn &insn = slots_[static_cast<size_t>(i)];
        if (!insn.isNop() && insn.slot == kind)
            ++c;
    }
    return c;
}

int
Bundle::freeSlotFor(SlotKind kind) const
{
    // A nop occupies a slot whose kind was fixed at padding time; an
    // instruction of kind K can replace a nop when doing so keeps the
    // bundle template legal.
    for (int i = 0; i < n_; ++i) {
        const Insn &insn = slots_[static_cast<size_t>(i)];
        if (!insn.isNop())
            continue;
        // Never place anything after a branch slot (branches are last, so
        // a nop before the branch is fine).
        int limit = kind == SlotKind::M ? 2 : 1;
        int occupied = countKind(kind);
        if (kind == SlotKind::B)
            continue;  // the scheduler never inserts branches
        if (occupied < limit)
            return i;
    }
    return -1;
}

bool
Bundle::canAccept(SlotKind kind) const
{
    if (full())
        return false;
    switch (kind) {
      case SlotKind::M:
        return countKind(SlotKind::M) < 2;
      case SlotKind::I:
        return true;
      case SlotKind::F:
        return countKind(SlotKind::F) < 1;
      case SlotKind::B:
        return countKind(SlotKind::B) < 1;
    }
    return false;
}

bool
Bundle::hasBranch() const
{
    return branchSlot() >= 0;
}

int
Bundle::branchSlot() const
{
    for (int i = 0; i < n_; ++i) {
        if (slots_[static_cast<size_t>(i)].isBranch())
            return i;
    }
    return -1;
}

std::string
Bundle::toString() const
{
    std::ostringstream os;
    os << "{ ";
    for (int i = 0; i < n_; ++i) {
        if (i)
            os << " ; ";
        os << disassemble(slots_[static_cast<size_t>(i)]);
    }
    os << " }";
    return os.str();
}

} // namespace adore
