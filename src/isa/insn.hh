/**
 * @file
 * The simulated mini-IA64 instruction set.
 *
 * This is a reduced model of the Itanium ISA with exactly the features the
 * paper's mechanisms depend on: explicit three-slot bundles with M/I/F/B
 * slot types, post-increment memory addressing, qualifying predicates,
 * non-faulting speculative loads (ld.s), software prefetch (lfetch), and a
 * register file with four integer registers (r27-r30) and one predicate
 * register (p6) reservable for the dynamic optimizer (paper Section 3.3).
 *
 * Instructions are stored decoded (no binary encoding) — the CodeImage is
 * addressed in 16-byte bundle units so that patching, trace addresses, and
 * binary-size accounting behave like the real machine.
 */

#ifndef ADORE_ISA_INSN_HH
#define ADORE_ISA_INSN_HH

#include <cstdint>
#include <string>

namespace adore
{

using Addr = std::uint64_t;

/** Architectural register file sizes. */
namespace isa
{
constexpr int numIntRegs = 32;    ///< r0 (always zero) .. r31
constexpr int numFpRegs = 16;     ///< f0 (always 0.0) .. f15
constexpr int numPredRegs = 8;    ///< p0 (always true) .. p7
constexpr int numBranchRegs = 4;  ///< b0 .. b3

/** Registers the static compiler reserves for ADORE (paper Section 3.3). */
constexpr std::uint8_t reservedIntRegFirst = 27;
constexpr std::uint8_t reservedIntRegLast = 30;
constexpr std::uint8_t reservedPredReg = 6;

/** A bundle occupies 16 bytes; instruction pc = bundle addr | slot index. */
constexpr Addr bundleBytes = 16;

constexpr Addr
bundleAddr(Addr pc)
{
    return pc & ~static_cast<Addr>(0xf);
}

constexpr int
slotOf(Addr pc)
{
    return static_cast<int>(pc & 0x3);
}

constexpr Addr
insnAddr(Addr bundle_addr, int slot)
{
    return bundle_addr | static_cast<Addr>(slot);
}
} // namespace isa

/** Slot (execution-unit) type of an instruction. */
enum class SlotKind : std::uint8_t { M, I, F, B };

enum class Opcode : std::uint8_t
{
    Nop,

    // A-type integer ALU (issues in an M or I slot).
    Add,     ///< rd = rs1 + rs2
    Sub,     ///< rd = rs1 - rs2
    Addi,    ///< rd = imm + rs1          (IA64 adds)
    Shladd,  ///< rd = (rs1 << count) + rs2
    Mov,     ///< rd = rs1
    Movi,    ///< rd = imm                (IA64 movl)
    And,     ///< rd = rs1 & rs2
    Or,      ///< rd = rs1 | rs2
    Xor,     ///< rd = rs1 ^ rs2
    Shl,     ///< rd = rs1 << count
    Shr,     ///< rd = rs1 >> count (logical)
    CmpLt,   ///< pd = (rs1 < rs2), signed
    CmpLe,   ///< pd = (rs1 <= rs2), signed
    CmpEq,   ///< pd = (rs1 == rs2)
    CmpNe,   ///< pd = (rs1 != rs2)

    // M-type memory operations (post-increment via 'postinc').
    Ld,      ///< rd = mem[rs1]; rs1 += postinc
    LdS,     ///< speculative non-faulting load (ld.s)
    St,      ///< mem[rs1] = rs2; rs1 += postinc
    Ldf,     ///< fd = mem[rs1] (fp); rs1 += postinc; bypasses L1D
    Stf,     ///< mem[rs1] = fs2; rs1 += postinc
    Lfetch,  ///< prefetch line at [rs1]; rs1 += postinc; never faults
    Getf,    ///< rd = significand bits of fs1 (fp -> int transfer)
    Setf,    ///< fd = rs1 (int -> fp transfer)

    // F-type floating point.
    Fma,     ///< fd = fs1 * fs2 + fs3
    Fadd,    ///< fd = fs1 + fs2
    Fmul,    ///< fd = fs1 * fs2
    Fsub,    ///< fd = fs1 - fs2

    // B-type branches (always the last slot of a bundle).
    Br,      ///< if (p[qp]) goto target
    BrCall,  ///< b[count] = next pc; goto target
    BrRet,   ///< goto b[count]
    Halt,    ///< terminate the program (simulator artifact)
};

/** Latency class of an instruction, predecoded for the interpreter. */
enum class LatClass : std::uint8_t
{
    Alu,     ///< single-cycle integer op
    Mem,     ///< memory reference (latency from the cache hierarchy)
    Fp,      ///< fpOpLatency-cycle floating-point op
    Branch,  ///< resolved by the branch unit
};

/** Predecoded per-instruction flags (see Insn::predecode). */
namespace insn_flags
{
constexpr std::uint8_t branch = 1u << 0;
constexpr std::uint8_t load = 1u << 1;
constexpr std::uint8_t memRef = 1u << 2;
} // namespace insn_flags

/**
 * One decoded instruction.  Fields unused by a given opcode are zero.
 */
struct Insn
{
    Opcode op = Opcode::Nop;
    SlotKind slot = SlotKind::I;
    std::uint8_t qp = 0;    ///< qualifying predicate; p0 is always true
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    std::uint8_t fd = 0;
    std::uint8_t fs1 = 0;
    std::uint8_t fs2 = 0;
    std::uint8_t fs3 = 0;
    std::uint8_t pd = 0;    ///< predicate destination (compares)
    std::uint8_t size = 8;  ///< memory access size in bytes
    std::uint8_t count = 0; ///< shift count / branch register index
    std::int32_t postinc = 0;
    std::int64_t imm = 0;
    Addr target = 0;        ///< branch target (bundle address)

    /**
     * Source-loop annotation, carried by the compiler for profile-guided
     * prefetching (Table 1); -1 when the instruction belongs to no loop.
     * Not architectural.
     */
    std::int32_t loopId = -1;

    /// @name Predecoded interpreter metadata (see predecode())
    /// @{
    std::uint32_t srcIntMask = 0;  ///< int regs whose ready time gates issue
    std::uint16_t srcFpMask = 0;   ///< fp regs whose ready time gates issue
    std::uint32_t dstIntMask = 0;  ///< int regs written (r0 excluded)
    std::uint16_t dstFpMask = 0;   ///< fp regs written (f0 excluded)
    std::uint8_t flags = 0;        ///< insn_flags bits
    LatClass latClass = LatClass::Alu;
    /// @}

    /**
     * Recompute the predecoded masks/flags from op and the register
     * fields.  Bundle::tryAdd and CodeImage's write paths call this so
     * every executable instruction carries metadata consistent with its
     * opcode; call it again after mutating op or any register field of an
     * instruction already placed in a bundle.
     */
    void predecode();

    bool isNop() const { return op == Opcode::Nop; }

    bool
    isMemRef() const
    {
        switch (op) {
          case Opcode::Ld:
          case Opcode::LdS:
          case Opcode::St:
          case Opcode::Ldf:
          case Opcode::Stf:
          case Opcode::Lfetch:
            return true;
          default:
            return false;
        }
    }

    bool
    isLoad() const
    {
        return op == Opcode::Ld || op == Opcode::LdS || op == Opcode::Ldf;
    }

    bool
    isBranch() const
    {
        return op == Opcode::Br || op == Opcode::BrCall ||
               op == Opcode::BrRet || op == Opcode::Halt;
    }

    bool isFp() const;

    /** Slot types this opcode may legally occupy. */
    static bool opAllowsSlot(Opcode op, SlotKind kind);
};

/** Natural (required or default) slot kind for an opcode. */
SlotKind naturalSlot(Opcode op);

/** Short mnemonic, e.g. "ld8" or "lfetch". */
std::string mnemonic(const Insn &insn);

/** Full disassembly of one instruction. */
std::string disassemble(const Insn &insn);

} // namespace adore

#endif // ADORE_ISA_INSN_HH
