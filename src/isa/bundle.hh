/**
 * @file
 * Instruction bundles: three slots with template legality rules.
 *
 * The template model is a simplification of the IA64 template set (MII,
 * MMI, MFI, MMF, MIB, MMB, MFB, ...): a bundle may hold at most two M
 * slots, at most one F slot, and at most one B slot, which must be the
 * final occupied slot.  This preserves the constraint the paper leans on
 * ("two extra memory operations per iteration would exceed the two bundles
 * per cycle limit", Section 1.3) without modelling every template.
 */

#ifndef ADORE_ISA_BUNDLE_HH
#define ADORE_ISA_BUNDLE_HH

#include <array>
#include <string>

#include "isa/insn.hh"

namespace adore
{

class Bundle
{
  public:
    static constexpr int numSlots = 3;

    Bundle() = default;

    /**
     * Try to add @p insn in the next free slot, choosing a legal slot kind
     * automatically for A-type (M-or-I) instructions.
     *
     * @return true when the instruction was placed.
     */
    bool tryAdd(Insn insn);

    /** Add, panicking when the bundle cannot legally take the insn. */
    void add(Insn insn);

    /** Pad the remaining slots with nops so the bundle has three slots. */
    void padWithNops();

    /**
     * Refresh the predecoded interpreter metadata of every slot.  The
     * CodeImage write paths call this so any bundle that becomes
     * executable carries masks consistent with its opcodes, even after
     * direct slot() mutation.
     */
    void predecodeAll();

    int size() const { return n_; }
    bool empty() const { return n_ == 0; }
    bool full() const { return n_ == numSlots; }

    const Insn &slot(int i) const { return slots_[static_cast<size_t>(i)]; }
    Insn &slot(int i) { return slots_[static_cast<size_t>(i)]; }

    /** Count of occupied slots of a given kind (nops excluded). */
    int countKind(SlotKind kind) const;

    /**
     * Index of a slot that holds a nop legally replaceable by an
     * instruction of kind @p kind, or -1.  Used by the prefetch scheduler
     * to place lfetch into otherwise-wasted M slots (paper Section 3.5).
     */
    int freeSlotFor(SlotKind kind) const;

    /** Whether adding one more instruction of @p kind would be legal. */
    bool canAccept(SlotKind kind) const;

    /** True when some occupied slot is a taken-path branch. */
    bool hasBranch() const;

    /**
     * Predecoded complement of hasBranch(), maintained by tryAdd() and
     * predecodeAll().  A branch-free bundle cannot halt or redirect
     * control, which lets the interpreter retire all of its slots on a
     * straight path without per-slot checks.
     */
    bool branchFree() const { return branchFree_; }

    /** Index of the first branch slot, or -1. */
    int branchSlot() const;

    std::string toString() const;

  private:
    std::array<Insn, numSlots> slots_{};
    int n_ = 0;
    bool branchFree_ = true;
};

} // namespace adore

#endif // ADORE_ISA_BUNDLE_HH
