#include "isa/insn.hh"

#include <cstdio>

namespace adore
{

void
Insn::predecode()
{
    srcIntMask = 0;
    srcFpMask = 0;
    dstIntMask = 0;
    dstFpMask = 0;
    flags = 0;

    // r0/f0 are hardwired zero: they are never written, their ready time
    // is always 0, and they can never participate in a split-issue
    // dependence — excluding them keeps the runtime mask walks shorter.
    auto src_r = [&](std::uint8_t reg) {
        if (reg)
            srcIntMask |= 1u << reg;
    };
    auto src_f = [&](std::uint8_t reg) {
        if (reg)
            srcFpMask |= static_cast<std::uint16_t>(1u << reg);
    };
    auto dst_r = [&](std::uint8_t reg) {
        if (reg)
            dstIntMask |= 1u << reg;
    };
    auto dst_f = [&](std::uint8_t reg) {
        if (reg)
            dstFpMask |= static_cast<std::uint16_t>(1u << reg);
    };

    // The source sets mirror Cpu::waitForSources: only registers whose
    // ready time can gate issue count, so Movi (immediate-only) and the
    // branches contribute nothing.
    switch (op) {
      case Opcode::Nop:
      case Opcode::Movi:
      case Opcode::Halt:
        break;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::CmpLt:
      case Opcode::CmpLe:
      case Opcode::CmpEq:
      case Opcode::CmpNe:
      case Opcode::Shladd:
        src_r(rs1);
        src_r(rs2);
        break;
      case Opcode::Addi:
      case Opcode::Mov:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Setf:
        src_r(rs1);
        break;
      case Opcode::Ld:
      case Opcode::LdS:
      case Opcode::Ldf:
      case Opcode::Lfetch:
        src_r(rs1);
        break;
      case Opcode::St:
        src_r(rs1);
        src_r(rs2);
        break;
      case Opcode::Stf:
        src_r(rs1);
        src_f(fs2);
        break;
      case Opcode::Getf:
        src_f(fs1);
        break;
      case Opcode::Fma:
        src_f(fs1);
        src_f(fs2);
        src_f(fs3);
        break;
      case Opcode::Fadd:
      case Opcode::Fmul:
      case Opcode::Fsub:
        src_f(fs1);
        src_f(fs2);
        break;
      case Opcode::Br:
      case Opcode::BrCall:
      case Opcode::BrRet:
        break;
    }

    switch (op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Addi:
      case Opcode::Shladd:
      case Opcode::Mov:
      case Opcode::Movi:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Getf:
        dst_r(rd);
        break;
      case Opcode::Ld:
      case Opcode::LdS:
        dst_r(rd);
        break;
      case Opcode::Ldf:
        dst_f(fd);
        break;
      case Opcode::Setf:
      case Opcode::Fma:
      case Opcode::Fadd:
      case Opcode::Fmul:
      case Opcode::Fsub:
        dst_f(fd);
        break;
      default:
        break;
    }
    if (isMemRef() && postinc)
        dst_r(rs1);  // post-increment updates the address register

    if (isBranch())
        flags |= insn_flags::branch;
    if (isLoad())
        flags |= insn_flags::load;
    if (isMemRef())
        flags |= insn_flags::memRef;

    if (isBranch())
        latClass = LatClass::Branch;
    else if (isMemRef())
        latClass = LatClass::Mem;
    else if (op == Opcode::Setf || op == Opcode::Fma ||
             op == Opcode::Fadd || op == Opcode::Fmul ||
             op == Opcode::Fsub) {
        latClass = LatClass::Fp;
    } else {
        latClass = LatClass::Alu;
    }
}

bool
Insn::isFp() const
{
    switch (op) {
      case Opcode::Ldf:
      case Opcode::Stf:
      case Opcode::Fma:
      case Opcode::Fadd:
      case Opcode::Fmul:
      case Opcode::Fsub:
      case Opcode::Setf:
        return true;
      default:
        return false;
    }
}

bool
Insn::opAllowsSlot(Opcode op, SlotKind kind)
{
    switch (op) {
      case Opcode::Nop:
        return true;  // nop.m / nop.i / nop.f / nop.b all exist
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Addi:
      case Opcode::Shladd:
      case Opcode::Mov:
      case Opcode::Movi:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::CmpLt:
      case Opcode::CmpLe:
      case Opcode::CmpEq:
      case Opcode::CmpNe:
        return kind == SlotKind::M || kind == SlotKind::I;
      case Opcode::Ld:
      case Opcode::LdS:
      case Opcode::St:
      case Opcode::Ldf:
      case Opcode::Stf:
      case Opcode::Lfetch:
      case Opcode::Getf:
      case Opcode::Setf:
        return kind == SlotKind::M;
      case Opcode::Fma:
      case Opcode::Fadd:
      case Opcode::Fmul:
      case Opcode::Fsub:
        return kind == SlotKind::F;
      case Opcode::Br:
      case Opcode::BrCall:
      case Opcode::BrRet:
      case Opcode::Halt:
        return kind == SlotKind::B;
    }
    return false;
}

SlotKind
naturalSlot(Opcode op)
{
    if (Insn::opAllowsSlot(op, SlotKind::M) &&
        !Insn::opAllowsSlot(op, SlotKind::I)) {
        return SlotKind::M;
    }
    if (Insn::opAllowsSlot(op, SlotKind::F))
        return SlotKind::F;
    if (Insn::opAllowsSlot(op, SlotKind::B))
        return SlotKind::B;
    return SlotKind::I;
}

std::string
mnemonic(const Insn &insn)
{
    switch (insn.op) {
      case Opcode::Nop: return "nop";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Addi: return "adds";
      case Opcode::Shladd: return "shladd";
      case Opcode::Mov: return "mov";
      case Opcode::Movi: return "movl";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr.u";
      case Opcode::CmpLt: return "cmp.lt";
      case Opcode::CmpLe: return "cmp.le";
      case Opcode::CmpEq: return "cmp.eq";
      case Opcode::CmpNe: return "cmp.ne";
      case Opcode::Ld: return "ld" + std::to_string(insn.size);
      case Opcode::LdS: return "ld" + std::to_string(insn.size) + ".s";
      case Opcode::St: return "st" + std::to_string(insn.size);
      case Opcode::Ldf: return insn.size == 4 ? "ldfs" : "ldfd";
      case Opcode::Stf: return insn.size == 4 ? "stfs" : "stfd";
      case Opcode::Lfetch: return "lfetch";
      case Opcode::Getf: return "getf.sig";
      case Opcode::Setf: return "setf.sig";
      case Opcode::Fma: return "fma";
      case Opcode::Fadd: return "fadd";
      case Opcode::Fmul: return "fmul";
      case Opcode::Fsub: return "fsub";
      case Opcode::Br: return "br.cond";
      case Opcode::BrCall: return "br.call";
      case Opcode::BrRet: return "br.ret";
      case Opcode::Halt: return "halt";
    }
    return "?";
}

std::string
disassemble(const Insn &insn)
{
    char buf[160];
    std::string m = mnemonic(insn);
    std::string qp =
        insn.qp ? "(p" + std::to_string(insn.qp) + ") " : "";

    auto r = [](int n) { return "r" + std::to_string(n); };
    auto f = [](int n) { return "f" + std::to_string(n); };

    std::string body;
    switch (insn.op) {
      case Opcode::Nop:
      case Opcode::Halt:
        body = m;
        break;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
        body = m + " " + r(insn.rd) + " = " + r(insn.rs1) + ", " +
               r(insn.rs2);
        break;
      case Opcode::Addi:
        std::snprintf(buf, sizeof(buf), "%s %s = %lld, %s", m.c_str(),
                      r(insn.rd).c_str(),
                      static_cast<long long>(insn.imm),
                      r(insn.rs1).c_str());
        body = buf;
        break;
      case Opcode::Shladd:
        std::snprintf(buf, sizeof(buf), "%s %s = %s, %d, %s", m.c_str(),
                      r(insn.rd).c_str(), r(insn.rs1).c_str(), insn.count,
                      r(insn.rs2).c_str());
        body = buf;
        break;
      case Opcode::Shl:
      case Opcode::Shr:
        std::snprintf(buf, sizeof(buf), "%s %s = %s, %d", m.c_str(),
                      r(insn.rd).c_str(), r(insn.rs1).c_str(), insn.count);
        body = buf;
        break;
      case Opcode::Mov:
        body = m + " " + r(insn.rd) + " = " + r(insn.rs1);
        break;
      case Opcode::Movi:
        std::snprintf(buf, sizeof(buf), "%s %s = %lld", m.c_str(),
                      r(insn.rd).c_str(),
                      static_cast<long long>(insn.imm));
        body = buf;
        break;
      case Opcode::CmpLt:
      case Opcode::CmpLe:
      case Opcode::CmpEq:
      case Opcode::CmpNe:
        std::snprintf(buf, sizeof(buf), "%s p%d = %s, %s", m.c_str(),
                      insn.pd, r(insn.rs1).c_str(), r(insn.rs2).c_str());
        body = buf;
        break;
      case Opcode::Ld:
      case Opcode::LdS:
        body = m + " " + r(insn.rd) + " = [" + r(insn.rs1) + "]";
        if (insn.postinc)
            body += ", " + std::to_string(insn.postinc);
        break;
      case Opcode::St:
        body = m + " [" + r(insn.rs1) + "] = " + r(insn.rs2);
        if (insn.postinc)
            body += ", " + std::to_string(insn.postinc);
        break;
      case Opcode::Ldf:
        body = m + " " + f(insn.fd) + " = [" + r(insn.rs1) + "]";
        if (insn.postinc)
            body += ", " + std::to_string(insn.postinc);
        break;
      case Opcode::Stf:
        body = m + " [" + r(insn.rs1) + "] = " + f(insn.fs2);
        if (insn.postinc)
            body += ", " + std::to_string(insn.postinc);
        break;
      case Opcode::Lfetch:
        body = m + " [" + r(insn.rs1) + "]";
        if (insn.postinc)
            body += ", " + std::to_string(insn.postinc);
        break;
      case Opcode::Getf:
        body = m + " " + r(insn.rd) + " = " + f(insn.fs1);
        break;
      case Opcode::Setf:
        body = m + " " + f(insn.fd) + " = " + r(insn.rs1);
        break;
      case Opcode::Fma:
        body = m + " " + f(insn.fd) + " = " + f(insn.fs1) + ", " +
               f(insn.fs2) + ", " + f(insn.fs3);
        break;
      case Opcode::Fadd:
      case Opcode::Fmul:
      case Opcode::Fsub:
        body = m + " " + f(insn.fd) + " = " + f(insn.fs1) + ", " +
               f(insn.fs2);
        break;
      case Opcode::Br:
        std::snprintf(buf, sizeof(buf), "%s 0x%llx", m.c_str(),
                      static_cast<unsigned long long>(insn.target));
        body = buf;
        break;
      case Opcode::BrCall:
        std::snprintf(buf, sizeof(buf), "%s b%d = 0x%llx", m.c_str(),
                      insn.count,
                      static_cast<unsigned long long>(insn.target));
        body = buf;
        break;
      case Opcode::BrRet:
        body = m + " b" + std::to_string(insn.count);
        break;
    }
    return qp + body;
}

} // namespace adore
