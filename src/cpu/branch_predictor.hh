/**
 * @file
 * Minimal 2-bit-counter branch direction predictor.  Target prediction is
 * assumed perfect (the BTB resolves targets); only direction mispredicts
 * pay the pipeline-flush penalty.
 */

#ifndef ADORE_CPU_BRANCH_PREDICTOR_HH
#define ADORE_CPU_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "isa/insn.hh"

namespace adore
{

class BranchPredictor
{
  public:
    explicit BranchPredictor(std::size_t entries = 1024)
        : table_(roundUpPow2(entries), 2),  // weakly taken start
          mask_(table_.size() - 1)
    {
    }

    bool
    predict(Addr pc) const
    {
        return table_[index(pc)] >= 2;
    }

    void
    update(Addr pc, bool taken)
    {
        std::uint8_t &ctr = table_[index(pc)];
        if (taken) {
            if (ctr < 3)
                ++ctr;
        } else {
            if (ctr > 0)
                --ctr;
        }
    }

  private:
    /**
     * A power-of-two table makes the per-branch index a mask instead of
     * a hardware divide (this sits on the interpreter's hot path).
     */
    static std::size_t
    roundUpPow2(std::size_t n)
    {
        std::size_t p = 1;
        while (p < n)
            p <<= 1;
        return p;
    }

    std::size_t
    index(Addr pc) const
    {
        return (pc >> 4) & mask_;
    }

    std::vector<std::uint8_t> table_;
    std::size_t mask_;
};

} // namespace adore

#endif // ADORE_CPU_BRANCH_PREDICTOR_HH
