#include "cpu/cpu.hh"

#include <algorithm>
#include <bit>

#include "cpu/exec_tier.hh"
#include "support/logging.hh"

/**
 * Flatten the interpreter hot path: inlining the whole call tree of
 * run() and execBundle() into single frames is worth ~20% simulated
 * MIPS over the compiler's default inlining decisions (the
 * per-instruction helpers otherwise stay out of line).
 */
#if defined(__GNUC__)
#define ADORE_FLATTEN __attribute__((flatten))
#else
#define ADORE_FLATTEN
#endif

namespace adore
{

const char *
execTierName(ExecTier tier)
{
    return tier == ExecTier::DirectThreaded ? "direct_threaded"
                                            : "interpreter";
}

Cpu::Cpu(CodeImage &code, CacheHierarchy &caches, MainMemory &memory,
         const CpuConfig &config)
    : code_(code),
      caches_(caches),
      memory_(memory),
      config_(config),
      ifetchLineMask_(~static_cast<Addr>(caches.l1i().lineBytes() - 1)),
      l1dFast_(&caches.l1dFast()),
      l2Fast_(&caches.l2Fast()),
      memFastPath_(caches.config().fastPath),
      hwpfValueObserve_(caches.hwPrefetch() != nullptr),
      l1dHitLatency_(caches.config().l1d.hitLatency),
      l2HitLatency_(caches.config().l2.hitLatency),
      l1dLineShift_(static_cast<std::uint32_t>(
          std::countr_zero(caches.l1d().lineBytes()))),
      l2LineShift_(static_cast<std::uint32_t>(
          std::countr_zero(caches.l2().lineBytes()))),
      execTierEnabled_(config.execTier == ExecTier::DirectThreaded),
      dear_(config.dearLatencyThreshold)
{
    p_[0] = true;  // p0 is hardwired true
    panic_if(config.bundleCacheEntries == 0 ||
                 !std::has_single_bit(config.bundleCacheEntries),
             "bundleCacheEntries must be a power of two, got %u",
             config.bundleCacheEntries);
    bundleCache_.resize(config.bundleCacheEntries);
    bundleCacheMask_ = config.bundleCacheEntries - 1;
    superblocks_ = std::make_unique<SuperblockCache>(
        config.bundleCacheEntries, config.superblockMaxInvalidations);
}

Cpu::~Cpu() = default;

const SuperblockStats &
Cpu::superblockStats() const
{
    return superblocks_->stats();
}

const Superblock *
Cpu::superblockAt(Addr head) const
{
    return superblocks_->probe(head, code_);
}

void
Cpu::setIntReg(int i, std::int64_t v)
{
    if (i != 0)
        r_[static_cast<size_t>(i)] = v;
}

void
Cpu::setFpReg(int i, double v)
{
    if (i != 0)
        f_[static_cast<size_t>(i)] = v;
}

void
Cpu::setPredReg(int i, bool v)
{
    if (i != 0)
        p_[static_cast<size_t>(i)] = v;
}

void
Cpu::addPeriodicHook(Cycle period, PeriodicHook hook)
{
    panic_if(period == 0, "zero-period hook");
    hooks_.push_back({period, cycle_ + period, std::move(hook)});
    recomputeNextEvent();
}

void
Cpu::recomputeNextEvent()
{
    Cycle next = ~Cycle{0};
    for (const Hook &hook : hooks_)
        next = std::min(next, hook.nextAt);
    if (sampler_ && sampler_->enabled())
        next = std::min(next, sampler_->nextSampleAt());
    nextEventAt_ = next;
}

void
Cpu::execBranch(const Insn &insn, Addr insn_pc, Addr bundle_addr)
{
    Addr fallthrough = bundle_addr + isa::bundleBytes;
    bool taken = false;
    Addr target = 0;

    switch (insn.op) {
      case Opcode::Br:
        taken = p_[insn.qp];
        target = insn.target;
        break;
      case Opcode::BrCall:
        taken = p_[insn.qp];
        if (taken) {
            b_[insn.count] = fallthrough;
            target = insn.target;
        }
        break;
      case Opcode::BrRet:
        taken = p_[insn.qp];
        target = b_[insn.count];
        break;
      case Opcode::Halt:
        halted_ = true;
        return;
      default:
        panic("execBranch on non-branch");
    }

    bool predicted_taken = predictor_.predict(insn_pc);
    bool mispredicted = predicted_taken != taken;
    predictor_.update(insn_pc, taken);

    if (mispredicted) {
        cycle_ += config_.mispredictPenalty;
        issuedThisCycle_ = 0;
        ++counters_.mispredicts;
    } else if (taken) {
        cycle_ += config_.takenBranchBubble;
        issuedThisCycle_ = 0;
    }

    btb_.record(insn_pc, taken ? target : fallthrough, taken, mispredicted);

    if (taken) {
        ++counters_.takenBranches;
        branchTaken_ = true;
        nextPc_ = target;
    }
}

void
Cpu::execInsn(const Insn &insn, Addr insn_pc, Addr bundle_addr)
{
    // Branches always reach the branch unit: a false qualifying
    // predicate makes them not-taken, but the predictor and BTB still
    // see them (and a wrong direction prediction still flushes).
    if (insn.flags & insn_flags::branch) {
        execBranch(insn, insn_pc, bundle_addr);
        return;
    }

    // Qualifying predicate: a predicated-off instruction still retires
    // but has no architectural or timing effect.
    if (!p_[insn.qp])
        return;

    waitForSources(insn);

    auto write_r = [&](std::uint8_t rd, std::int64_t v, Cycle ready) {
        writeIntReg(rd, v, ready);
    };
    auto write_f = [&](std::uint8_t fd, double v, Cycle ready) {
        writeFpReg(fd, v, ready);
    };
    // Integer ALU arithmetic is two's-complement wrapping (the modeled
    // machine's semantics); compute in uint64_t so host signed overflow
    // never occurs.
    auto u = [&](std::uint8_t rs) {
        return static_cast<std::uint64_t>(r_[rs]);
    };
    auto wrap = [](std::uint64_t v) { return static_cast<std::int64_t>(v); };

    switch (insn.op) {
      case Opcode::Nop:
        break;
      case Opcode::Add:
        write_r(insn.rd, wrap(u(insn.rs1) + u(insn.rs2)), cycle_);
        break;
      case Opcode::Sub:
        write_r(insn.rd, wrap(u(insn.rs1) - u(insn.rs2)), cycle_);
        break;
      case Opcode::Addi:
        write_r(insn.rd,
                wrap(static_cast<std::uint64_t>(insn.imm) + u(insn.rs1)),
                cycle_);
        break;
      case Opcode::Shladd:
        write_r(insn.rd,
                wrap((u(insn.rs1) << insn.count) + u(insn.rs2)), cycle_);
        break;
      case Opcode::Mov:
        write_r(insn.rd, r_[insn.rs1], cycle_);
        break;
      case Opcode::Movi:
        write_r(insn.rd, insn.imm, cycle_);
        break;
      case Opcode::And:
        write_r(insn.rd, r_[insn.rs1] & r_[insn.rs2], cycle_);
        break;
      case Opcode::Or:
        write_r(insn.rd, r_[insn.rs1] | r_[insn.rs2], cycle_);
        break;
      case Opcode::Xor:
        write_r(insn.rd, r_[insn.rs1] ^ r_[insn.rs2], cycle_);
        break;
      case Opcode::Shl:
        write_r(insn.rd, wrap(u(insn.rs1) << insn.count), cycle_);
        break;
      case Opcode::Shr:
        write_r(insn.rd,
                static_cast<std::int64_t>(
                    static_cast<std::uint64_t>(r_[insn.rs1]) >> insn.count),
                cycle_);
        break;
      case Opcode::CmpLt:
      case Opcode::CmpLe:
      case Opcode::CmpEq:
      case Opcode::CmpNe: {
        bool res = false;
        switch (insn.op) {
          case Opcode::CmpLt: res = r_[insn.rs1] < r_[insn.rs2]; break;
          case Opcode::CmpLe: res = r_[insn.rs1] <= r_[insn.rs2]; break;
          case Opcode::CmpEq: res = r_[insn.rs1] == r_[insn.rs2]; break;
          default: res = r_[insn.rs1] != r_[insn.rs2]; break;
        }
        if (insn.pd != 0)
            p_[insn.pd] = res;
        break;
      }
      case Opcode::Ld:
      case Opcode::LdS: {
        Addr ea = static_cast<Addr>(r_[insn.rs1]);
        MemAccessResult res = loadInt(ea, insn_pc);
        std::uint64_t raw = memory_.read(ea, insn.size);
        // Pointer-chase lookahead: a 64-bit load's value is often the
        // next node address, so warming the host cache lines its walk
        // and data read will touch overlaps a full simulated iteration.
        // Hint only; a non-pointer value just prefetches nothing useful.
        if (insn.size == 8) {
            caches_.hostPrefetchWalk(raw);
            memory_.hostPrefetch(raw);
            if (hwpfValueObserve_)
                caches_.observeLoadedValue(insn_pc, ea, raw, res.latency,
                                           cycle_);
        }
        write_r(insn.rd, static_cast<std::int64_t>(raw),
                cycle_ + res.latency);
        if (insn.postinc)
            write_r(insn.rs1,
                    wrap(u(insn.rs1) +
                         static_cast<std::uint64_t>(insn.postinc)),
                    cycle_);
        dear_.observeLoad(insn_pc, ea, res.latency, cycle_);
        if (res.latency >= config_.dearLatencyThreshold)
            ++counters_.dcacheLoadMisses;
        break;
      }
      case Opcode::Ldf: {
        Addr ea = static_cast<Addr>(r_[insn.rs1]);
        MemAccessResult res = loadFp(ea, insn_pc);
        double v = insn.size == 4
                       ? static_cast<double>(memory_.readF32(ea))
                       : memory_.readF64(ea);
        write_f(insn.fd, v, cycle_ + res.latency);
        if (insn.postinc)
            write_r(insn.rs1,
                    wrap(u(insn.rs1) +
                         static_cast<std::uint64_t>(insn.postinc)),
                    cycle_);
        dear_.observeLoad(insn_pc, ea, res.latency, cycle_);
        if (res.latency >= config_.dearLatencyThreshold)
            ++counters_.dcacheLoadMisses;
        break;
      }
      case Opcode::St: {
        Addr ea = static_cast<Addr>(r_[insn.rs1]);
        memory_.write(ea, static_cast<std::uint64_t>(r_[insn.rs2]),
                      insn.size);
        storeInt(ea);
        if (insn.postinc)
            write_r(insn.rs1,
                    wrap(u(insn.rs1) +
                         static_cast<std::uint64_t>(insn.postinc)),
                    cycle_);
        break;
      }
      case Opcode::Stf: {
        Addr ea = static_cast<Addr>(r_[insn.rs1]);
        if (insn.size == 4)
            memory_.writeF32(ea, static_cast<float>(f_[insn.fs2]));
        else
            memory_.writeF64(ea, f_[insn.fs2]);
        storeFp(ea);
        if (insn.postinc)
            write_r(insn.rs1,
                    wrap(u(insn.rs1) +
                         static_cast<std::uint64_t>(insn.postinc)),
                    cycle_);
        break;
      }
      case Opcode::Lfetch: {
        Addr ea = static_cast<Addr>(r_[insn.rs1]);
        // Overlap the host cache misses of the prefetch walk (L2 probe,
        // below-L2 fills) with the decode of the rest of the bundle.
        caches_.hostPrefetchWalk(ea);
        // count == 1 encodes the .nt1 hint: do not allocate in L1D.
        caches_.prefetch(ea, cycle_, insn.count == 1);
        if (insn.postinc)
            write_r(insn.rs1,
                    wrap(u(insn.rs1) +
                         static_cast<std::uint64_t>(insn.postinc)),
                    cycle_);
        break;
      }
      case Opcode::Getf:
        // Modelled as a fused fcvt.fx.trunc + getf.sig: the integer value
        // of the FP register.  Opaque to the ADORE dependence slicer.
        write_r(insn.rd, static_cast<std::int64_t>(f_[insn.fs1]), cycle_);
        break;
      case Opcode::Setf:
        write_f(insn.fd, static_cast<double>(r_[insn.rs1]),
                cycle_ + config_.fpOpLatency);
        break;
      case Opcode::Fma:
        write_f(insn.fd, f_[insn.fs1] * f_[insn.fs2] + f_[insn.fs3],
                cycle_ + config_.fpOpLatency);
        break;
      case Opcode::Fadd:
        write_f(insn.fd, f_[insn.fs1] + f_[insn.fs2],
                cycle_ + config_.fpOpLatency);
        break;
      case Opcode::Fmul:
        write_f(insn.fd, f_[insn.fs1] * f_[insn.fs2],
                cycle_ + config_.fpOpLatency);
        break;
      case Opcode::Fsub:
        write_f(insn.fd, f_[insn.fs1] - f_[insn.fs2],
                cycle_ + config_.fpOpLatency);
        break;
      case Opcode::Br:
      case Opcode::BrCall:
      case Opcode::BrRet:
      case Opcode::Halt:
        break;  // handled above
    }
}

ADORE_FLATTEN void
Cpu::execBundle(const Bundle &bundle, Addr bundle_addr)
{
    intWrittenMask_ = 0;
    fpWrittenMask_ = 0;
    splitIssueCharged_ = false;
    branchTaken_ = false;

    const int n = bundle.size();
    if (bundle.branchFree()) {
        // No slot is a branch (or halt), so control cannot leave the
        // bundle and every slot retires: the per-slot halt/redirect
        // checks fold away and the retire count updates once.
        for (int slot = 0; slot < n; ++slot)
            execInsn(bundle.slot(slot), isa::insnAddr(bundle_addr, slot),
                     bundle_addr);
        counters_.retiredInsns += static_cast<std::uint64_t>(n);
    } else {
        for (int slot = 0; slot < n; ++slot) {
            const Insn &insn = bundle.slot(slot);
            execInsn(insn, isa::insnAddr(bundle_addr, slot), bundle_addr);
            ++counters_.retiredInsns;
            if (halted_ || branchTaken_)
                break;
        }
    }

    // Split issue: an intra-bundle register dependence forces the bundle
    // across a cycle boundary.
    if (splitIssueCharged_) {
        cycle_ += 1;
        issuedThisCycle_ = 0;
    }
}

void
Cpu::runHooks()
{
    for (Hook &hook : hooks_) {
        while (cycle_ >= hook.nextAt) {
            hook.fn(cycle_);
            hook.nextAt += hook.period;
        }
    }
}

void
Cpu::maybeSample(Addr bundle_addr)
{
    if (!sampler_ || !sampler_->enabled())
        return;
    if (cycle_ < sampler_->nextSampleAt())
        return;

    Sample s;
    s.pc = bundle_addr;
    s.cycles = cycle_;
    s.dcacheMissCount = counters_.dcacheLoadMisses;
    s.retiredCount = counters_.retiredInsns;
    s.btb = btb_.snapshot();
    s.dear = dear_.read();
    Cycle overhead = sampler_->takeSample(s);
    cycle_ += overhead;
}

bool
Cpu::step()
{
    if (halted_)
        return false;

    Addr bundle_addr = isa::bundleAddr(pc_);

    // Instruction fetch through the L1I.  Fast path: the previous fetch
    // touched the same line and its fill has completed, so this fetch is
    // a guaranteed ready hit on the (already-MRU) line — only the hit
    // statistics need updating.  L1I lines move only through ifetch
    // itself, so any eviction of the cached line is preceded by a
    // slow-path fetch that retags the cache (see DESIGN.md).
    Addr fetch_line = bundle_addr & ifetchLineMask_;
    if (memFastPath_ && fetch_line == lastIfetchLine_ &&
        cycle_ >= lastIfetchReadyAt_) {
        caches_.noteIfetchRepeatHit();
    } else {
        std::uint32_t fetch_stall = caches_.ifetch(bundle_addr, cycle_);
        lastIfetchLine_ = fetch_line;
        lastIfetchReadyAt_ = cycle_ + fetch_stall;
        if (fetch_stall) {
            cycle_ += fetch_stall;
            issuedThisCycle_ = 0;
        }
    }

    if (issuedThisCycle_ >= config_.bundlesPerCycle) {
        cycle_ += 1;
        issuedThisCycle_ = 0;
    }

    // Decoded-bundle lookup through the direct-mapped cache, falling
    // back to the bounds-checked-once contiguous-span fetch.  The hit
    // counter doubles as the execution tier's hotness signal: the
    // superblockHotThreshold-th execution of an address (at an
    // unchanged region cache key) promotes it to a superblock.
    std::uint64_t code_key = code_.cacheKey(bundle_addr);
    BundleCacheEntry &entry =
        bundleCache_[(bundle_addr / isa::bundleBytes) & bundleCacheMask_];
    const Bundle *bundle;
    if (bundle_addr == entry.addr && code_key == entry.key) {
        bundle = entry.bundle;
        if (++entry.hits == config_.superblockHotThreshold &&
            execTierEnabled_) {
            buildSuperblockAt(bundle_addr);
        }
    } else {
        bundle = code_.fetchFast(bundle_addr);
        panic_if(!bundle, "fetch outside image: 0x%llx",
                 static_cast<unsigned long long>(bundle_addr));
        entry = {bundle_addr, code_key, bundle, 1};
        if (config_.superblockHotThreshold == 1 && execTierEnabled_)
            buildSuperblockAt(bundle_addr);
    }

    nextPc_ = bundle_addr + isa::bundleBytes;
    execBundle(*bundle, bundle_addr);
    ++issuedThisCycle_;
    pc_ = nextPc_;

    // Event watermark: the common step does one comparison instead of
    // polling the sampler and scanning the hook list.  Deferred cache
    // stats are flushed first so samplers and hooks observe exactly the
    // counters the slow path would have produced.
    if (cycle_ >= nextEventAt_) {
        syncDeferredMemStats();
        maybeSample(bundle_addr);
        runHooks();
        recomputeNextEvent();
    }
    counters_.cycles = cycle_;

    return !halted_;
}

ADORE_FLATTEN Cpu::RunResult
Cpu::run(Cycle max_cycles)
{
    // The sampler may have been enabled or retimed since the watermark
    // was last computed (e.g. Sampler::setEnabled after setSampler).
    recomputeNextEvent();

    if (execTierEnabled_) {
        // Superblock dispatch: a valid block at pc executes flattened
        // (chaining into further blocks) until a side exit, event
        // service, or budget/generation check fails; everything else
        // (including hotness training and formation) goes through the
        // interpreter step.  step() stays exactly one bundle either
        // way, so direct step() drivers see pure interpreter behaviour.
        //
        // Oracle accounting: the retired-instruction delta across one
        // execSuperblock call covers the whole chained excursion, so a
        // cheap "glue" entry block that chains into heavy loops is
        // valued by the work it leads to, not just its own bundles.
        // The counters and the demotion verdict are host-side only.
        const std::uint32_t window = config_.superblockDemoteWindow;
        const std::uint64_t min_retired =
            config_.superblockMinRetiredPerDispatch;
        while (!halted_ && cycle_ < max_cycles &&
               !stopRequested_.load(std::memory_order_relaxed)) {
            Superblock *sb =
                superblocks_->lookup(isa::bundleAddr(pc_), code_);
            if (sb) {
                ++superblocks_->stats().dispatches;
                if (window) {
                    std::uint64_t before = counters_.retiredInsns;
                    execSuperblock(sb, max_cycles);
                    // sb stayed alive through the call: blocks die only
                    // at lookup/insert/demote, and an in-flight entry
                    // block is never stale at a chain lookup (mutations
                    // force an event exit first).
                    sb->workRetired += counters_.retiredInsns - before;
                    if (++sb->windowDispatches >= window) {
                        if (sb->workRetired <
                            min_retired * sb->windowDispatches) {
                            superblocks_->demote(sb, code_);
                        } else {
                            sb->workRetired = 0;
                            sb->windowDispatches = 0;
                        }
                    }
                } else {
                    execSuperblock(sb, max_cycles);
                }
                continue;
            }
            step();
        }
    } else {
        while (!halted_ && cycle_ < max_cycles &&
               !stopRequested_.load(std::memory_order_relaxed)) {
            step();
        }
    }

    syncDeferredMemStats();
    counters_.cycles = cycle_;
    return {halted_, cycle_, counters_.retiredInsns};
}

} // namespace adore
