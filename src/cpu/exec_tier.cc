/**
 * @file
 * Superblock builder and direct-threaded executor (DESIGN.md §12).
 *
 * The executor is a single Cpu member function holding one handler per
 * UopKind.  With the GNU labels-as-values extension each handler is a
 * local label whose address is pre-bound into the uops at build time,
 * so dispatch is one indirect goto per micro-op; elsewhere the same
 * handler bodies compile as a switch loop.  The handler bodies are
 * written to mirror Cpu::execInsn / execBranch / step() statement for
 * statement — ordering of memory-model calls, DEAR/BTB reporting,
 * predictor updates, and cycle charges is load-bearing for the
 * bit-identity contract (tests/test_tier_toggle.cc).
 *
 * Exit discipline: the executor leaves the block whenever the event
 * watermark fires (after servicing it exactly as step() does).  All
 * runtime code-image mutations happen inside periodic hooks, so a
 * block's uops can never go stale mid-flight; the span generations are
 * still revalidated on every inline back-edge as cheap insurance.
 *
 * Chaining safety rests on the same discipline: region generations can
 * only change inside a hook, a hook only runs at an event service, and
 * an event service forces an exit before any chain attempt — so at a
 * chain seam the *current* block is provably still valid, and only the
 * *target* needs revalidating (two region-counter loads) before the
 * jump.  Stale targets are dropped and unlinked on the spot.
 */

#include <vector>

#include "cpu/cpu.hh"
#include "cpu/exec_tier.hh"
#include "support/logging.hh"

#if defined(__GNUC__)
#define ADORE_SB_THREADED 1
#define ADORE_FLATTEN __attribute__((flatten))
#else
#define ADORE_SB_THREADED 0
#define ADORE_FLATTEN
#endif

namespace adore
{

namespace
{

/** Two's-complement wrapping helpers, as in execInsn. */
inline std::uint64_t
uw(std::int64_t v)
{
    return static_cast<std::uint64_t>(v);
}

inline std::int64_t
wrap(std::uint64_t v)
{
    return static_cast<std::int64_t>(v);
}

/** Fused loop-tail kind for a compare feeding the back-edge branch. */
UopKind
cmpBrLastKindFor(Opcode op)
{
    switch (op) {
      case Opcode::CmpLt: return UopKind::CmpLtBrLast;
      case Opcode::CmpLe: return UopKind::CmpLeBrLast;
      case Opcode::CmpEq: return UopKind::CmpEqBrLast;
      case Opcode::CmpNe: return UopKind::CmpNeBrLast;
      default: break;
    }
    panic("cmpBrLastKindFor: not a compare (%d)", static_cast<int>(op));
}

bool
isCmp(Opcode op)
{
    return op == Opcode::CmpLt || op == Opcode::CmpLe ||
           op == Opcode::CmpEq || op == Opcode::CmpNe;
}

/**
 * Build-time peephole: can the adjacent same-bundle pair (a, b) run as
 * one combined handler?  Every pair kind's handler is the exact
 * concatenation of the two plain handlers, so fusion is legal for any
 * adjacent non-branch-terminated pair — the set below just names the
 * combinations hot enough to deserve a handler: compare feeding a side
 * exit, address generation feeding a load, and a load feeding its
 * induction/use step.
 */
bool
fusePair(const Uop &a, const Uop &b, bool fuse_loads, UopKind &fused)
{
    if (b.kind == UopKind::Br) {
        switch (a.kind) {
          case UopKind::CmpLt: fused = UopKind::CmpLtBr; return true;
          case UopKind::CmpLe: fused = UopKind::CmpLeBr; return true;
          case UopKind::CmpEq: fused = UopKind::CmpEqBr; return true;
          case UopKind::CmpNe: fused = UopKind::CmpNeBr; return true;
          default: return false;
        }
    }
    if (!fuse_loads)
        return false;
    if (b.kind == UopKind::Ld) {
        if (a.kind == UopKind::Addi) {
            fused = UopKind::AddiLd;
            return true;
        }
        if (a.kind == UopKind::Shladd) {
            fused = UopKind::ShladdLd;
            return true;
        }
        return false;
    }
    if (a.kind == UopKind::Ld && b.kind == UopKind::Addi) {
        fused = UopKind::LdAddi;
        return true;
    }
    return false;
}

UopKind
uopKindFor(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return UopKind::Nop;
      case Opcode::Add: return UopKind::Add;
      case Opcode::Sub: return UopKind::Sub;
      case Opcode::Addi: return UopKind::Addi;
      case Opcode::Shladd: return UopKind::Shladd;
      case Opcode::Mov: return UopKind::Mov;
      case Opcode::Movi: return UopKind::Movi;
      case Opcode::And: return UopKind::And;
      case Opcode::Or: return UopKind::Or;
      case Opcode::Xor: return UopKind::Xor;
      case Opcode::Shl: return UopKind::Shl;
      case Opcode::Shr: return UopKind::Shr;
      case Opcode::CmpLt: return UopKind::CmpLt;
      case Opcode::CmpLe: return UopKind::CmpLe;
      case Opcode::CmpEq: return UopKind::CmpEq;
      case Opcode::CmpNe: return UopKind::CmpNe;
      case Opcode::Ld: return UopKind::Ld;
      case Opcode::LdS: return UopKind::Ld;  // identical execution
      case Opcode::St: return UopKind::St;
      case Opcode::Ldf: return UopKind::Ldf;
      case Opcode::Stf: return UopKind::Stf;
      case Opcode::Lfetch: return UopKind::Lfetch;
      case Opcode::Getf: return UopKind::Getf;
      case Opcode::Setf: return UopKind::Setf;
      case Opcode::Fma: return UopKind::Fma;
      case Opcode::Fadd: return UopKind::Fadd;
      case Opcode::Fmul: return UopKind::Fmul;
      case Opcode::Fsub: return UopKind::Fsub;
      case Opcode::Br: return UopKind::Br;
      case Opcode::BrCall: return UopKind::BrCall;
      case Opcode::BrRet: return UopKind::BrRet;
      case Opcode::Halt: return UopKind::Halt;
    }
    panic("uopKindFor: unknown opcode %d", static_cast<int>(op));
}

} // namespace

void
Cpu::buildSuperblockAt(Addr head)
{
    if (config_.superblockMaxBundles == 0 ||
        config_.superblockHotThreshold == 0) {
        return;
    }
    if (superblocks_->probe(head, code_))
        return;
    // Profitability oracle: heads demoted for retiring too little work
    // per dispatch (at this code generation) or churned past the
    // invalidation limit are not worth rebuilding.
    if (!superblocks_->promotionAllowed(head, code_))
        return;

    // Region selection: extend along the fall-through path.  A
    // conditional Br is a side exit and the region continues past it; a
    // back-edge Br to the head closes the loop form; BrCall, BrRet, and
    // Halt end the region (no static fall-through worth stitching).
    struct BodyBundle
    {
        const Bundle *bundle;
        Addr addr;
    };
    std::vector<BodyBundle> body;
    bool loop_back = false;
    Addr addr = head;
    while (body.size() < config_.superblockMaxBundles) {
        const Bundle *bundle = code_.fetchFast(addr);
        if (!bundle)
            break;
        body.push_back({bundle, addr});
        int bslot = bundle->branchSlot();
        if (bslot >= 0) {
            const Insn &bi = bundle->slot(bslot);
            if (bi.op != Opcode::Br)
                break;
            if (bi.target == head) {
                loop_back = true;
                break;
            }
        }
        addr += isa::bundleBytes;
    }
    if (body.empty())
        return;

    auto sb = std::make_unique<Superblock>();
    sb->head = head;
    sb->spanEnd = body.back().addr;
    sb->genSum = code_.spanGeneration(head, sb->spanEnd);
    sb->loopBack = loop_back;
    sb->bundles = static_cast<std::uint32_t>(body.size());
    sb->uops.reserve(body.size() * (Bundle::numSlots + 2));

    const void *const *labels = execSuperblock(nullptr, 0);
    auto bind = [labels](Uop &uop) {
        if (labels)
            uop.handler = labels[static_cast<std::size_t>(uop.kind)];
    };
    const bool fusion = config_.superblockFusion;

    std::vector<Uop> tmp;  // one bundle's instruction uops, pre-merge
    for (std::size_t i = 0; i < body.size(); ++i) {
        const Bundle &bundle = *body[i].bundle;
        Addr baddr = body[i].addr;
        bool last = i + 1 == body.size();
        int n = bundle.size();

        // Loop-tail fusion (host cost only; semantics are the exact
        // concatenation of the unfused handlers).  A final-slot Br in
        // the region's last bundle absorbs BundleEndLast (BrLast); a
        // compare immediately feeding it is absorbed too (Cmp**BrLast).
        // A bundle containing Halt is never fused: halt jumps to the
        // bundle's epilogue uop, which must then exist on its own.
        bool has_halt = false;
        for (int slot = 0; slot < n; ++slot)
            if (bundle.slot(slot).op == Opcode::Halt)
                has_halt = true;
        bool fuse_br = fusion && last && !has_halt && n >= 1 &&
                       bundle.slot(n - 1).op == Opcode::Br;
        bool fuse_cmp = fuse_br && n >= 2 && isCmp(bundle.slot(n - 2).op);

        // Emit this bundle's plain instruction uops into tmp, then
        // peephole-merge adjacent pairs (same bundle by construction).
        int plain_slots = n - (fuse_cmp ? 2 : fuse_br ? 1 : 0);
        tmp.clear();
        for (int slot = 0; slot < plain_slots; ++slot) {
            Uop uop;
            uop.kind = uopKindFor(bundle.slot(slot).op);
            uop.insn = bundle.slot(slot);
            uop.insnPc = isa::insnAddr(baddr, slot);
            uop.bundleAddr = baddr;
            tmp.push_back(uop);
        }
        if (fusion && tmp.size() >= 2) {
            const bool fuse_loads = config_.superblockFuseLoads;
            std::size_t w = 0;
            for (std::size_t rd = 0; rd < tmp.size(); ++rd) {
                UopKind fused;
                if (rd + 1 < tmp.size() &&
                    fusePair(tmp[rd], tmp[rd + 1], fuse_loads, fused)) {
                    Uop pair = tmp[rd];
                    pair.kind = fused;
                    pair.insn2 = tmp[rd + 1].insn;
                    pair.insnPc2 = tmp[rd + 1].insnPc;
                    tmp[w++] = pair;
                    ++rd;
                    ++superblocks_->stats().fusedPairs;
                } else {
                    tmp[w++] = tmp[rd];
                }
            }
            tmp.resize(w);
        }
        if (fuse_cmp)
            ++superblocks_->stats().fusedPairs;

        // Index of this bundle's epilogue uop (BundleEnd* or the seam
        // into the next bundle): taken branches and halt jump straight
        // there, skipping the trailing slots exactly like the
        // interpreter's per-slot break.  With a fused branch the final
        // uop carries its own epilogue and the index is never consumed.
        // Computed after the merge pass, which changes the uop count.
        std::uint32_t end_idx = static_cast<std::uint32_t>(
            sb->uops.size() + (i == 0 ? 1 : 0) + tmp.size());

        if (i == 0) {
            Uop start;
            start.kind = UopKind::BundleStart;
            start.bundleAddr = baddr;
            start.fetchLine = baddr & ifetchLineMask_;
            start.endIdx = end_idx;
            bind(start);
            sb->uops.push_back(start);
        }

        for (Uop &uop : tmp) {
            uop.endIdx = end_idx;
            bind(uop);
            sb->uops.push_back(uop);
        }

        if (fuse_cmp) {
            Uop uop;
            uop.kind = cmpBrLastKindFor(bundle.slot(n - 2).op);
            uop.insn = bundle.slot(n - 2);
            uop.insnPc = isa::insnAddr(baddr, n - 2);
            uop.insn2 = bundle.slot(n - 1);
            uop.insnPc2 = isa::insnAddr(baddr, n - 1);
            uop.bundleAddr = baddr;
            uop.endIdx = end_idx;
            bind(uop);
            sb->uops.push_back(uop);
        } else if (fuse_br) {
            Uop uop;
            uop.kind = UopKind::BrLast;
            uop.insn = bundle.slot(n - 1);
            uop.insnPc = isa::insnAddr(baddr, n - 1);
            uop.bundleAddr = baddr;
            uop.endIdx = end_idx;
            bind(uop);
            sb->uops.push_back(uop);
        } else if (last) {
            Uop end;
            end.kind = UopKind::BundleEndLast;
            end.bundleAddr = baddr;
            end.endIdx = end_idx;
            bind(end);
            sb->uops.push_back(end);
        } else {
            // Interior boundary: one seam uop carries this bundle's
            // epilogue and the next bundle's prologue.
            Addr next_addr = body[i + 1].addr;
            Uop seam;
            seam.kind = UopKind::BundleSeam;
            seam.bundleAddr = baddr;
            seam.bundleAddr2 = next_addr;
            seam.fetchLine = next_addr & ifetchLineMask_;
            seam.endIdx = end_idx;
            bind(seam);
            sb->uops.push_back(seam);
        }
    }

    superblocks_->insert(std::move(sb));
}

/*
 * Dispatch scaffolding.  In threaded builds SB_CASE expands to a local
 * label and SB_NEXT to an indirect goto through the next uop's
 * pre-bound handler; in the portable fallback the same bodies sit in a
 * switch re-entered via `goto dispatch`.  Every handler ends with
 * SB_NEXT / SB_GOTO / return, so control never falls through from one
 * case into the next.
 */
#if ADORE_SB_THREADED
#define SB_CASE(k) L_##k:
#define SB_NEXT()                                                       \
    do {                                                                \
        ++u;                                                            \
        goto *u->handler;                                               \
    } while (0)
#define SB_GOTO(idx)                                                    \
    do {                                                                \
        u = base + (idx);                                               \
        goto *u->handler;                                               \
    } while (0)
#define SB_LOOP_TOP()                                                   \
    do {                                                                \
        u = base;                                                       \
        goto *u->handler;                                               \
    } while (0)
#else
#define SB_CASE(k) case UopKind::k:
#define SB_NEXT()                                                       \
    do {                                                                \
        ++u;                                                            \
        goto dispatch;                                                  \
    } while (0)
#define SB_GOTO(idx)                                                    \
    do {                                                                \
        u = base + (idx);                                               \
        goto dispatch;                                                  \
    } while (0)
#define SB_LOOP_TOP()                                                   \
    do {                                                                \
        u = base;                                                       \
        goto dispatch;                                                  \
    } while (0)
#endif

/*
 * Register-cached hot state.  The members the interpreter touches on
 * every instruction (cycle_, issuedThisCycle_, the written-this-bundle
 * masks, the retire count, nextPc_) live in locals for the whole
 * superblock run so the compiler can keep them in host registers
 * instead of store/load-forwarding through `this` between handlers —
 * that member traffic, not dispatch, is what bounds the threaded tier.
 * SB_SYNC_OUT publishes the locals to the members (every exit, and
 * before any call that reads them: the event service, and the
 * line-buffer memory helpers which read cycle_); SB_SYNC_IN reloads
 * them afterwards.  counters_.cycles is deliberately NOT in SB_SYNC_OUT:
 * step() assigns it after the event block, and the sampler must see the
 * same (previous-bundle) value in both tiers.  The set is deliberately
 * capped at what fits the host register file — hoisting pc_ /
 * counters_.cycles / the loopTrips RMW as well measured slower (spill
 * traffic beats the member stores they replace).
 */
#define SB_SYNC_OUT()                                                   \
    do {                                                                \
        cycle_ = cyc;                                                   \
        issuedThisCycle_ = issued;                                      \
        counters_.retiredInsns = retired;                               \
        intWrittenMask_ = int_written;                                  \
        fpWrittenMask_ = fp_written;                                    \
        splitIssueCharged_ = split_charged;                             \
        branchTaken_ = branch_taken;                                    \
        nextPc_ = next_pc;                                              \
        lastIfetchLine_ = last_ifetch_line;                             \
        lastIfetchReadyAt_ = last_ifetch_ready;                         \
    } while (0)

#define SB_SYNC_IN()                                                    \
    do {                                                                \
        cyc = cycle_;                                                   \
        issued = issuedThisCycle_;                                      \
        retired = counters_.retiredInsns;                               \
        int_written = intWrittenMask_;                                  \
        fp_written = fpWrittenMask_;                                    \
        split_charged = splitIssueCharged_;                             \
        branch_taken = branchTaken_;                                    \
        next_pc = nextPc_;                                              \
        last_ifetch_line = lastIfetchLine_;                             \
        last_ifetch_ready = lastIfetchReadyAt_;                         \
        next_event = nextEventAt_;                                      \
    } while (0)

/** Bundle epilogue, mirroring the tail of step(): split-issue charge,
 *  issue accounting, pc publication, then the event watermark (pc_
 *  already points at the next bundle when events fire, and the sample
 *  pc is the just-executed bundle — both exactly as in step()).  The
 *  executor leaves the block after any event service: hooks are the
 *  only place runtime code mutation happens. */
#define SB_BUNDLE_EPILOGUE()                                            \
    if (split_charged) {                                                \
        cyc += 1;                                                       \
        issued = 0;                                                     \
    }                                                                   \
    ++issued;                                                           \
    pc_ = next_pc;                                                      \
    if (cyc >= next_event) {                                            \
        SB_SYNC_OUT();                                                  \
        syncDeferredMemStats();                                         \
        maybeSample(u->bundleAddr);                                     \
        runHooks();                                                     \
        recomputeNextEvent();                                           \
        SB_SYNC_IN();                                                   \
        event_exit = true;                                              \
    }                                                                   \
    counters_.cycles = cyc

/** Non-memory, non-branch instruction: predicated-off still retires
 *  but has no architectural or timing effect (as in execInsn). */
#define SB_ALU_CASE(k, body)                                            \
    SB_CASE(k)                                                          \
    {                                                                   \
        const Insn &insn = u->insn;                                     \
        if (p_[insn.qp]) {                                              \
            sbWaitForSources(insn);                                     \
            body;                                                       \
        }                                                               \
        ++retired;                                                      \
        SB_NEXT();                                                      \
    }

/** Post-increment addressing, mirroring execInsn: applied after the
 *  destination writeback, so a load into its own address register
 *  post-increments the loaded value. */
#define SB_POSTINC()                                                    \
    if (insn.postinc)                                                   \
        sbWriteIntReg(insn.rs1,                                         \
                      wrap(uw(r_[insn.rs1]) +                           \
                           static_cast<std::uint64_t>(insn.postinc)),   \
                      cyc)

/** Branch retire + redirect: a taken branch (or halt) jumps to the
 *  bundle's end uop — the interpreter's per-slot break. */
#define SB_BRANCH_TAIL()                                                \
    do {                                                                \
        ++retired;                                                      \
        if (branch_taken)                                               \
            SB_GOTO(u->endIdx);                                         \
        SB_NEXT();                                                      \
    } while (0)

/** Bundle prologue, mirroring the head of step(): instruction fetch
 *  through the L1I (including the PR 1 repeat-hit fast path; the line
 *  is precomputed per uop), the issue-width limit, and the per-bundle
 *  mask/flag reset. */
#define SB_BUNDLE_PROLOGUE(baddr, bline)                                \
    do {                                                                \
        if (mem_fast && (bline) == last_ifetch_line &&                  \
            cyc >= last_ifetch_ready) {                                 \
            caches_.noteIfetchRepeatHit();                              \
        } else {                                                        \
            std::uint32_t fetch_stall = caches_.ifetch((baddr), cyc);   \
            last_ifetch_line = (bline);                                 \
            last_ifetch_ready = cyc + fetch_stall;                      \
            if (fetch_stall) {                                          \
                cyc += fetch_stall;                                     \
                issued = 0;                                             \
            }                                                           \
        }                                                               \
        if (issued >= bundles_per_cycle) {                              \
            cyc += 1;                                                   \
            issued = 0;                                                 \
        }                                                               \
        next_pc = (baddr) + isa::bundleBytes;                           \
        int_written = 0;                                                \
        fp_written = 0;                                                 \
        split_charged = false;                                          \
        branch_taken = false;                                           \
    } while (0)

/** Chain seam: the block is done but execution continues at next_pc —
 *  if a valid block is cached there, jump straight to its uops without
 *  returning to the run() loop, keeping the hoisted locals and the
 *  pending-ready watermark live.  Falls through to a plain exit when
 *  chaining is off, an exit is forced (halt/event/budget), or no valid
 *  target exists.  Safe because generations cannot have changed since
 *  this block's dispatch (mutations force an event exit first), so only
 *  the *target* needs revalidating — sbChainTarget does that. */
#define SB_TRY_CHAIN()                                                  \
    do {                                                                \
        if (chain_on && !halted_ && !event_exit && cyc < max_cycles) {  \
            Superblock *nb = sbChainTarget(next_pc);                    \
            if (nb) {                                                   \
                cur = nb;                                               \
                base = nb->uops.data();                                 \
                sb_head = nb->head;                                     \
                SB_GOTO(0);                                             \
            }                                                           \
        }                                                               \
        SB_SYNC_OUT();                                                  \
        return nullptr;                                                 \
    } while (0)

/** Final-bundle epilogue + inline back-edge: the loop-form block
 *  restarts at uop[0] when its branch redirected to the head and
 *  nothing (halt, event service, cycle budget) demands an exit.  No
 *  generation recheck is needed on the back-edge: image mutation only
 *  happens inside hooks, hooks only run at event service, and event
 *  service sets event_exit — so reaching the loop-back with
 *  event_exit == false proves the span is exactly as validated at
 *  dispatch (lookup / sbChainTarget).  Any other continuation is a
 *  chain candidate. */
#define SB_LAST_TAIL()                                                  \
    do {                                                                \
        bool event_exit = false;                                        \
        SB_BUNDLE_EPILOGUE();                                           \
        if (!halted_ && !event_exit && branch_taken &&                  \
            next_pc == sb_head && cyc < max_cycles) {                   \
            ++superblocks_->stats().loopTrips;                          \
            SB_LOOP_TOP();                                              \
        }                                                               \
        SB_TRY_CHAIN();                                                 \
    } while (0)

/** The plain-Br body of execBranch: direction prediction, penalty /
 *  bubble charges, BTB recording, redirect.  Shared by the Br handler
 *  and the fused BrLast / Cmp**BrLast tails. */
#define SB_BR_CORE(brinsn, brpc)                                        \
    do {                                                                \
        Addr fallthrough = u->bundleAddr + isa::bundleBytes;            \
        bool taken = p_[(brinsn).qp];                                   \
        Addr target = (brinsn).target;                                  \
        bool predicted_taken = predictor_.predict(brpc);                \
        bool mispredicted = predicted_taken != taken;                   \
        predictor_.update((brpc), taken);                               \
        if (mispredicted) {                                             \
            cyc += config_.mispredictPenalty;                           \
            issued = 0;                                                 \
            ++counters_.mispredicts;                                    \
        } else if (taken) {                                             \
            cyc += config_.takenBranchBubble;                           \
            issued = 0;                                                 \
        }                                                               \
        btb_.record((brpc), taken ? target : fallthrough, taken,        \
                    mispredicted);                                      \
        if (taken) {                                                    \
            ++counters_.takenBranches;                                  \
            branch_taken = true;                                        \
            next_pc = target;                                           \
        }                                                               \
    } while (0)

/*
 * Shared instruction bodies for the fused-pair handlers.  Each is the
 * full execInsn-mirroring body of one plain handler (predication,
 * source waits, writeback, retire) parameterized on which of the uop's
 * two instruction copies it reads — so a pair handler is literally the
 * two plain bodies back to back with one dispatch saved, and the plain
 * handlers use the same macros, keeping the copies impossible to drift.
 */
#define SB_LD_BODY(ldinsn, ldpc)                                        \
    do {                                                                \
        const Insn &insn = (ldinsn);                                    \
        if (p_[insn.qp]) {                                              \
            sbWaitForSources(insn);                                     \
            Addr ea = static_cast<Addr>(r_[insn.rs1]);                  \
            cycle_ = cyc; /* loadInt reads cycle_ */                    \
            MemAccessResult res = loadInt(ea, (ldpc));                  \
            std::uint64_t raw = memory_.read(ea, insn.size);            \
            /* Deliberate divergence from execInsn: no pointer-chase    \
             * host lookahead (see the Ld handler note below). */       \
            if (hwpfValueObserve_ && insn.size == 8)                    \
                caches_.observeLoadedValue((ldpc), ea, raw,             \
                                           res.latency, cyc);           \
            sbWriteIntReg(insn.rd, static_cast<std::int64_t>(raw),      \
                          cyc + res.latency);                           \
            SB_POSTINC();                                               \
            dear_.observeLoad((ldpc), ea, res.latency, cyc);            \
            if (res.latency >= config_.dearLatencyThreshold)            \
                ++counters_.dcacheLoadMisses;                           \
        }                                                               \
        ++retired;                                                      \
    } while (0)

#define SB_ADDI_BODY(aiinsn)                                            \
    do {                                                                \
        const Insn &insn = (aiinsn);                                    \
        if (p_[insn.qp]) {                                              \
            sbWaitForSources(insn);                                     \
            sbWriteIntReg(insn.rd,                                      \
                          wrap(static_cast<std::uint64_t>(insn.imm) +   \
                               uw(r_[insn.rs1])),                       \
                          cyc);                                         \
        }                                                               \
        ++retired;                                                      \
    } while (0)

#define SB_SHLADD_BODY(sainsn)                                          \
    do {                                                                \
        const Insn &insn = (sainsn);                                    \
        if (p_[insn.qp]) {                                              \
            sbWaitForSources(insn);                                     \
            sbWriteIntReg(insn.rd,                                      \
                          wrap((uw(r_[insn.rs1]) << insn.count) +       \
                               uw(r_[insn.rs2])),                       \
                          cyc);                                         \
        }                                                               \
        ++retired;                                                      \
    } while (0)

/** The fused `cmp ; br` pair at an interior side exit: the compare
 *  body, then the branch reading the just-written predicate, then the
 *  normal branch tail (taken -> bundle epilogue via endIdx). */
#define SB_CMP_BR_CASE(k, cmp_expr)                                     \
    SB_CASE(k)                                                          \
    {                                                                   \
        const Insn &insn = u->insn;                                     \
        if (p_[insn.qp]) {                                              \
            sbWaitForSources(insn);                                     \
            bool res = (cmp_expr);                                      \
            if (insn.pd != 0)                                           \
                p_[insn.pd] = res;                                      \
        }                                                               \
        ++retired;                                                      \
        SB_BR_CORE(u->insn2, u->insnPc2);                               \
        SB_BRANCH_TAIL();                                               \
    }

ADORE_FLATTEN const void *const *
Cpu::execSuperblock(Superblock *sb, Cycle max_cycles)
{
#if ADORE_SB_THREADED
    static const void *const labels[] = {
#define ADORE_SB_LABEL_ENTRY(k) &&L_##k,
        ADORE_SB_UOP_KINDS(ADORE_SB_LABEL_ENTRY)
#undef ADORE_SB_LABEL_ENTRY
    };
    static_assert(sizeof(labels) / sizeof(labels[0]) == numUopKinds,
                  "label table out of sync with UopKind");
    if (!sb)
        return labels;
#else
    if (!sb)
        return nullptr;
#endif

    // Block-identity state, mutable because chaining retargets it:
    // `cur` is the block whose uops are executing (run() counts the
    // dispatch; chained entries count under stats().chained).
    Superblock *cur = sb;
    const Uop *base = cur->uops.data();
    const Uop *u = base;
    Addr sb_head = cur->head;
    const bool chain_on = config_.superblockChaining;

    // Hot member state hoisted into locals (see the SB_SYNC_OUT comment).
    Cycle cyc;
    int issued;
    std::uint64_t retired;
    std::uint32_t int_written;
    std::uint16_t fp_written;
    bool split_charged;
    bool branch_taken;
    Addr next_pc;
    Addr last_ifetch_line;
    Cycle last_ifetch_ready;
    Cycle next_event;
    SB_SYNC_IN();
    const bool mem_fast = memFastPath_;
    const int bundles_per_cycle = config_.bundlesPerCycle;

    /*
     * Pending-ready watermark: the highest ready-time any register can
     * hold.  rReady_/fReady_ entries are only ever written with the
     * then-current cycle (ALU results) or current cycle + latency
     * (loads, FP); the cycle is monotonic, so once cyc reaches the
     * watermark no source operand can stall and sbWaitForSources
     * collapses to the split-issue mask test — zero scoreboard loads.
     * A pure ALU loop rides that fast path permanently.  Seeded from a
     * full scoreboard scan once per block dispatch; bumped by every
     * latency-carrying writeback.
     */
    Cycle pending_max = 0;
    for (Cycle t : rReady_)
        pending_max = std::max(pending_max, t);
    for (Cycle t : fReady_)
        pending_max = std::max(pending_max, t);

    /*
     * Local mirrors of Cpu::waitUntil / waitForSources / writeIntReg /
     * writeFpReg operating on the hoisted state.  Statement-for-statement
     * copies of the cpu.hh originals — any change there must land here
     * too (the tier-toggle bit-identity suite is the tripwire).
     */
    auto sbWaitUntil = [&](Cycle ready_at) {
        if (ready_at > cyc) {
            cyc = ready_at;
            issued = 0;
        }
    };
    auto sbWaitForSources = [&](const Insn &insn) {
        std::uint32_t im = insn.srcIntMask;
        std::uint32_t fm = insn.srcFpMask;
        // Watermark shortcut, checked first because it subsumes the
        // no-source case: no register is pending past cyc, so the
        // ready-time walk cannot stall and only the split-issue mask
        // test remains (branchless; identical net effect to the full
        // walk below, which also charges only on mask overlap).
        if (cyc >= pending_max) {
            split_charged |= ((int_written & im) | (fp_written & fm)) != 0;
            return;
        }
        if ((im | fm) == 0)
            return;
        if (int_written & im)
            split_charged = true;
        if (fm == 0 && (im & (im - 1)) == 0) {
            sbWaitUntil(
                rReady_[static_cast<unsigned>(std::countr_zero(im))]);
            return;
        }
        Cycle ready = 0;
        while (im) {
            ready = std::max(
                ready, rReady_[static_cast<unsigned>(std::countr_zero(im))]);
            im &= im - 1;
        }
        if (fp_written & fm)
            split_charged = true;
        while (fm) {
            ready = std::max(
                ready, fReady_[static_cast<unsigned>(std::countr_zero(fm))]);
            fm &= fm - 1;
        }
        sbWaitUntil(ready);
    };
    auto sbWriteIntReg = [&](std::uint8_t rd, std::int64_t v, Cycle ready) {
        if (rd == 0)
            return;
        r_[rd] = v;
        rReady_[rd] = ready;
        // Only a ready time still in the future can ever stall a later
        // read (cyc is monotonic), so same-cycle writebacks — every ALU
        // op passes `cyc` here — skip the watermark bump entirely: the
        // inlined `cyc > cyc` folds to false.
        if (ready > cyc)
            pending_max = std::max(pending_max, ready);
        int_written |= 1u << rd;
    };
    auto sbWriteFpReg = [&](std::uint8_t fd, double v, Cycle ready) {
        if (fd == 0)
            return;
        f_[fd] = v;
        fReady_[fd] = ready;
        if (ready > cyc)  // see sbWriteIntReg
            pending_max = std::max(pending_max, ready);
        fp_written |= static_cast<std::uint16_t>(1u << fd);
    };

    /*
     * Resolve a chain target for SB_TRY_CHAIN: first the current
     * block's cached links, then a cache lookup that records a new
     * link.  Targets are revalidated against their span generations on
     * every follow; a stale cached target is dropped and unlinked on
     * the spot (never `cur` — cur is valid, see SB_TRY_CHAIN).
     */
    auto sbChainTarget = [&](Addr target) -> Superblock * {
        for (Superblock::ChainLink &l : cur->chains) {
            if (l.to && l.target == target) {
                if (code_.spanGeneration(l.to->head, l.to->spanEnd) ==
                    l.to->genSum) {
                    ++superblocks_->stats().chained;
                    return l.to;
                }
                if (l.to != cur)
                    superblocks_->invalidateBlock(l.to);
                return nullptr;
            }
        }
        Superblock *to = superblocks_->lookup(target, code_);
        if (!to)
            return nullptr;
        superblocks_->link(cur, target, to);
        ++superblocks_->stats().chained;
        return to;
    };

#if ADORE_SB_THREADED
    goto *u->handler;
#else
dispatch:
    switch (u->kind) {
#endif

    SB_CASE(BundleStart)
    {
        SB_BUNDLE_PROLOGUE(u->bundleAddr, u->fetchLine);
        SB_NEXT();
    }

    SB_CASE(BundleSeam)
    {
        // Interior bundle boundary: this bundle's epilogue, then —
        // unless something demands an exit — the next bundle's
        // prologue, all in one dispatch.  A taken side exit is a chain
        // candidate: the branch target may head another cached block.
        bool event_exit = false;
        SB_BUNDLE_EPILOGUE();
        if (halted_ || branch_taken || event_exit || cyc >= max_cycles) {
            if (branch_taken)
                SB_TRY_CHAIN();
            SB_SYNC_OUT();
            return nullptr;
        }
        SB_BUNDLE_PROLOGUE(u->bundleAddr2, u->fetchLine);
        SB_NEXT();
    }

    SB_CASE(BundleEndLast)
    {
        SB_LAST_TAIL();
    }

    SB_CASE(Nop)
    {
        // qp and waitForSources are no-ops for a nop; only the retire
        // count remains.
        ++retired;
        SB_NEXT();
    }

    SB_ALU_CASE(Add,
                sbWriteIntReg(insn.rd,
                              wrap(uw(r_[insn.rs1]) + uw(r_[insn.rs2])),
                              cyc))
    SB_ALU_CASE(Sub,
                sbWriteIntReg(insn.rd,
                              wrap(uw(r_[insn.rs1]) - uw(r_[insn.rs2])),
                              cyc))
    SB_CASE(Addi)
    {
        SB_ADDI_BODY(u->insn);
        SB_NEXT();
    }

    SB_CASE(Shladd)
    {
        SB_SHLADD_BODY(u->insn);
        SB_NEXT();
    }
    SB_ALU_CASE(Mov, sbWriteIntReg(insn.rd, r_[insn.rs1], cyc))
    SB_ALU_CASE(Movi, sbWriteIntReg(insn.rd, insn.imm, cyc))
    SB_ALU_CASE(And,
                sbWriteIntReg(insn.rd, r_[insn.rs1] & r_[insn.rs2], cyc))
    SB_ALU_CASE(Or,
                sbWriteIntReg(insn.rd, r_[insn.rs1] | r_[insn.rs2], cyc))
    SB_ALU_CASE(Xor,
                sbWriteIntReg(insn.rd, r_[insn.rs1] ^ r_[insn.rs2], cyc))
    SB_ALU_CASE(Shl, sbWriteIntReg(insn.rd,
                                   wrap(uw(r_[insn.rs1]) << insn.count),
                                   cyc))
    SB_ALU_CASE(Shr,
                sbWriteIntReg(insn.rd,
                              static_cast<std::int64_t>(
                                  static_cast<std::uint64_t>(
                                      r_[insn.rs1]) >>
                                  insn.count),
                              cyc))

#define SB_CMP_BODY(cmp_expr)                                           \
    do {                                                                \
        bool res = (cmp_expr);                                          \
        if (insn.pd != 0)                                               \
            p_[insn.pd] = res;                                          \
    } while (0)
    SB_ALU_CASE(CmpLt, SB_CMP_BODY(r_[insn.rs1] < r_[insn.rs2]))
    SB_ALU_CASE(CmpLe, SB_CMP_BODY(r_[insn.rs1] <= r_[insn.rs2]))
    SB_ALU_CASE(CmpEq, SB_CMP_BODY(r_[insn.rs1] == r_[insn.rs2]))
    SB_ALU_CASE(CmpNe, SB_CMP_BODY(r_[insn.rs1] != r_[insn.rs2]))
#undef SB_CMP_BODY

    SB_CASE(Ld)
    {
        // SB_LD_BODY's deliberate divergence from execInsn: no
        // pointer-chase host lookahead (hostPrefetchWalk/hostPrefetch
        // on the loaded value).  It has no simulated effect, and in
        // this tier the line buffer plus warm host caches already cover
        // the hot footprint — measured on jit_hot_loop, mcf_o2_adore
        // and mcf_pointer_chase_hot, the unconditional lookahead is a
        // net host-side loss here (it stays in the interpreter, where
        // it wins).
        SB_LD_BODY(u->insn, u->insnPc);
        SB_NEXT();
    }

    SB_CASE(Ldf)
    {
        const Insn &insn = u->insn;
        if (p_[insn.qp]) {
            sbWaitForSources(insn);
            Addr ea = static_cast<Addr>(r_[insn.rs1]);
            cycle_ = cyc;  // loadFp reads cycle_ (line-buffer readiness)
            MemAccessResult res = loadFp(ea, u->insnPc);
            double v = insn.size == 4
                           ? static_cast<double>(memory_.readF32(ea))
                           : memory_.readF64(ea);
            sbWriteFpReg(insn.fd, v, cyc + res.latency);
            SB_POSTINC();
            dear_.observeLoad(u->insnPc, ea, res.latency, cyc);
            if (res.latency >= config_.dearLatencyThreshold)
                ++counters_.dcacheLoadMisses;
        }
        ++retired;
        SB_NEXT();
    }

    SB_CASE(St)
    {
        const Insn &insn = u->insn;
        if (p_[insn.qp]) {
            sbWaitForSources(insn);
            Addr ea = static_cast<Addr>(r_[insn.rs1]);
            memory_.write(ea, static_cast<std::uint64_t>(r_[insn.rs2]),
                          insn.size);
            cycle_ = cyc;  // storeInt reads cycle_
            storeInt(ea);
            SB_POSTINC();
        }
        ++retired;
        SB_NEXT();
    }

    SB_CASE(Stf)
    {
        const Insn &insn = u->insn;
        if (p_[insn.qp]) {
            sbWaitForSources(insn);
            Addr ea = static_cast<Addr>(r_[insn.rs1]);
            if (insn.size == 4)
                memory_.writeF32(ea, static_cast<float>(f_[insn.fs2]));
            else
                memory_.writeF64(ea, f_[insn.fs2]);
            cycle_ = cyc;  // storeFp reads cycle_
            storeFp(ea);
            SB_POSTINC();
        }
        ++retired;
        SB_NEXT();
    }

    SB_CASE(Lfetch)
    {
        const Insn &insn = u->insn;
        if (p_[insn.qp]) {
            sbWaitForSources(insn);
            Addr ea = static_cast<Addr>(r_[insn.rs1]);
            caches_.hostPrefetchWalk(ea);
            // count == 1 encodes the .nt1 hint (no L1D allocation).
            caches_.prefetch(ea, cyc, insn.count == 1);
            SB_POSTINC();
        }
        ++retired;
        SB_NEXT();
    }

    SB_ALU_CASE(Getf,
                sbWriteIntReg(insn.rd,
                              static_cast<std::int64_t>(f_[insn.fs1]),
                              cyc))
    SB_ALU_CASE(Setf,
                sbWriteFpReg(insn.fd, static_cast<double>(r_[insn.rs1]),
                             cyc + config_.fpOpLatency))
    SB_ALU_CASE(Fma,
                sbWriteFpReg(insn.fd,
                             f_[insn.fs1] * f_[insn.fs2] + f_[insn.fs3],
                             cyc + config_.fpOpLatency))
    SB_ALU_CASE(Fadd, sbWriteFpReg(insn.fd, f_[insn.fs1] + f_[insn.fs2],
                                   cyc + config_.fpOpLatency))
    SB_ALU_CASE(Fmul, sbWriteFpReg(insn.fd, f_[insn.fs1] * f_[insn.fs2],
                                   cyc + config_.fpOpLatency))
    SB_ALU_CASE(Fsub, sbWriteFpReg(insn.fd, f_[insn.fs1] - f_[insn.fs2],
                                   cyc + config_.fpOpLatency))

    SB_CASE(Br)
    {
        SB_BR_CORE(u->insn, u->insnPc);
        SB_BRANCH_TAIL();
    }

    SB_CASE(BrCall)
    {
        const Insn &insn = u->insn;
        Addr fallthrough = u->bundleAddr + isa::bundleBytes;
        bool taken = p_[insn.qp];
        Addr target = 0;
        if (taken) {
            b_[insn.count] = fallthrough;
            target = insn.target;
        }
        bool predicted_taken = predictor_.predict(u->insnPc);
        bool mispredicted = predicted_taken != taken;
        predictor_.update(u->insnPc, taken);
        if (mispredicted) {
            cyc += config_.mispredictPenalty;
            issued = 0;
            ++counters_.mispredicts;
        } else if (taken) {
            cyc += config_.takenBranchBubble;
            issued = 0;
        }
        btb_.record(u->insnPc, taken ? target : fallthrough, taken,
                    mispredicted);
        if (taken) {
            ++counters_.takenBranches;
            branch_taken = true;
            next_pc = target;
        }
        SB_BRANCH_TAIL();
    }

    SB_CASE(BrRet)
    {
        const Insn &insn = u->insn;
        Addr fallthrough = u->bundleAddr + isa::bundleBytes;
        bool taken = p_[insn.qp];
        Addr target = b_[insn.count];
        bool predicted_taken = predictor_.predict(u->insnPc);
        bool mispredicted = predicted_taken != taken;
        predictor_.update(u->insnPc, taken);
        if (mispredicted) {
            cyc += config_.mispredictPenalty;
            issued = 0;
            ++counters_.mispredicts;
        } else if (taken) {
            cyc += config_.takenBranchBubble;
            issued = 0;
        }
        btb_.record(u->insnPc, taken ? target : fallthrough, taken,
                    mispredicted);
        if (taken) {
            ++counters_.takenBranches;
            branch_taken = true;
            next_pc = target;
        }
        SB_BRANCH_TAIL();
    }

    SB_CASE(Halt)
    {
        // As in execBranch: halt retires without touching the
        // predictor or BTB, then breaks to the bundle epilogue.
        halted_ = true;
        ++retired;
        SB_GOTO(u->endIdx);
    }

    SB_CASE(BrLast)
    {
        // Fused back-edge: the Br body, then the final-bundle epilogue.
        // Exact concatenation of Br + BundleEndLast — the Br is the
        // bundle's final slot, so both its taken break and its
        // fall-through land on the end uop anyway.
        SB_BR_CORE(u->insn, u->insnPc);
        ++retired;
        SB_LAST_TAIL();
    }

/** The fused `cmp ; br` loop tail: the compare body (predication and
 *  all), then the branch reading the just-written predicate, then the
 *  final-bundle epilogue — three handlers' work in one dispatch. */
#define SB_CMP_BR_LAST_CASE(k, cmp_expr)                                \
    SB_CASE(k)                                                          \
    {                                                                   \
        const Insn &insn = u->insn;                                     \
        if (p_[insn.qp]) {                                              \
            sbWaitForSources(insn);                                     \
            bool res = (cmp_expr);                                      \
            if (insn.pd != 0)                                           \
                p_[insn.pd] = res;                                      \
        }                                                               \
        ++retired;                                                      \
        SB_BR_CORE(u->insn2, u->insnPc2);                               \
        ++retired;                                                      \
        SB_LAST_TAIL();                                                 \
    }

    SB_CMP_BR_LAST_CASE(CmpLtBrLast, r_[insn.rs1] < r_[insn.rs2])
    SB_CMP_BR_LAST_CASE(CmpLeBrLast, r_[insn.rs1] <= r_[insn.rs2])
    SB_CMP_BR_LAST_CASE(CmpEqBrLast, r_[insn.rs1] == r_[insn.rs2])
    SB_CMP_BR_LAST_CASE(CmpNeBrLast, r_[insn.rs1] != r_[insn.rs2])
#undef SB_CMP_BR_LAST_CASE

    SB_CMP_BR_CASE(CmpLtBr, r_[insn.rs1] < r_[insn.rs2])
    SB_CMP_BR_CASE(CmpLeBr, r_[insn.rs1] <= r_[insn.rs2])
    SB_CMP_BR_CASE(CmpEqBr, r_[insn.rs1] == r_[insn.rs2])
    SB_CMP_BR_CASE(CmpNeBr, r_[insn.rs1] != r_[insn.rs2])

    SB_CASE(AddiLd)
    {
        SB_ADDI_BODY(u->insn);
        SB_LD_BODY(u->insn2, u->insnPc2);
        SB_NEXT();
    }

    SB_CASE(ShladdLd)
    {
        SB_SHLADD_BODY(u->insn);
        SB_LD_BODY(u->insn2, u->insnPc2);
        SB_NEXT();
    }

    SB_CASE(LdAddi)
    {
        SB_LD_BODY(u->insn, u->insnPc);
        SB_ADDI_BODY(u->insn2);
        SB_NEXT();
    }

#if !ADORE_SB_THREADED
    }
    panic("superblock executor: unhandled uop kind %d",
          static_cast<int>(u->kind));
#endif
}

} // namespace adore
