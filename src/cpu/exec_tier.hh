/**
 * @file
 * Direct-threaded superblock execution tier (DESIGN.md §12).
 *
 * The interpreter's step() pays per-bundle dispatch overhead — the
 * decoded-bundle-cache probe, the per-slot opcode switch, and the call
 * frames around execBundle — on every bundle, even inside a loop that
 * executes the same few bundles millions of times.  This tier stitches
 * the decoded bundles of a hot straight-line/loop region into one
 * flattened micro-op array ("superblock"): each micro-op carries a copy
 * of its decoded instruction, its precomputed addresses, and a
 * pre-bound handler pointer, so Cpu::execSuperblock can run the region
 * with computed-goto (labels-as-values) dispatch — one indirect jump
 * per micro-op — falling back to a portable switch loop on compilers
 * without the GNU extension.
 *
 * The tier is a pure host optimization: every handler performs exactly
 * the simulated work of the interpreter path (ifetch timing, issue
 * limits, stall-on-use waits, split-issue charges, DEAR/BTB reporting,
 * the PMU event watermark), so metrics, sampler accounting, and
 * decision-event streams are bit-identical with the tier on or off
 * (tests/test_tier_toggle.cc).
 *
 * Lifecycle (region-keyed, DESIGN.md §12): a superblock records the
 * sum of the CodeImage per-region generation counters over its bundle
 * span at build time; a lookup revalidates that sum, so only mutations
 * that touched the block's own 1 KiB regions kill it — an ADORE patch
 * to one loop head no longer flushes every other region's blocks.  A
 * block is never executing while the image mutates: all runtime image
 * mutations happen inside periodic hooks, and the executor exits the
 * block whenever the event watermark fires.
 *
 * Blocks whose exit lands on another cached block's head are *chained*:
 * the executor jumps straight to the target's uops (revalidating the
 * target's span generations first) without returning to the run() loop,
 * keeping the register-hoisted state and the pending-ready watermark
 * live across the transition.  Links carry unlink-on-invalidate
 * bookkeeping (each block knows its incoming linkers) so a dead block
 * never leaves a dangling chain pointer behind.
 */

#ifndef ADORE_CPU_EXEC_TIER_HH
#define ADORE_CPU_EXEC_TIER_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "isa/bundle.hh"
#include "isa/insn.hh"
#include "program/code_image.hh"

namespace adore
{

/**
 * Micro-op kinds, one per executor handler.  The X-macro keeps the
 * enum, the computed-goto label table, and the switch fallback in sync
 * (exec_tier.cc builds all three from this list; order is load-bearing).
 *
 * Structural kinds frame each bundle: BundleStart replays step()'s
 * prologue (ifetch, issue limit, written-mask reset) for the region's
 * first bundle, BundleSeam replays the epilogue (split-issue charge,
 * pc update, event watermark) plus the next bundle's prologue at every
 * interior boundary, and BundleEndLast replays the final epilogue and
 * decides whether to loop back to the head or leave the block.
 * Instruction kinds map 1:1 onto opcodes (LdS shares Ld: identical
 * execution semantics).
 *
 * Fused kinds exist purely to cut dispatches on the hot path; each is
 * the exact concatenation of its constituent handlers, so they change
 * host cost only, never simulated behaviour:
 *  - BrLast        = a final-slot Br in the region's last bundle +
 *                    BundleEndLast (the loop back-edge)
 *  - Cmp**BrLast   = a compare immediately preceding that Br in the
 *                    same bundle + BrLast (the canonical `cmp ; br`
 *                    loop tail)
 *  - Cmp**Br       = the same `cmp ; br` pair anywhere else in the
 *                    region (interior side exits)
 *  - AddiLd/ShladdLd = address generation feeding a load (the two
 *                    addressing idioms the compiler emits)
 *  - LdAddi        = a load followed by an ALU use/induction step
 * The pair kinds are produced by the build-time peephole pass, gated
 * by CpuConfig::superblockFusion.
 */
#define ADORE_SB_UOP_KINDS(X)                                           \
    X(BundleStart)                                                      \
    X(BundleEndLast)                                                    \
    X(Nop)                                                              \
    X(Add)                                                              \
    X(Sub)                                                              \
    X(Addi)                                                             \
    X(Shladd)                                                           \
    X(Mov)                                                              \
    X(Movi)                                                             \
    X(And)                                                              \
    X(Or)                                                               \
    X(Xor)                                                              \
    X(Shl)                                                              \
    X(Shr)                                                              \
    X(CmpLt)                                                            \
    X(CmpLe)                                                            \
    X(CmpEq)                                                            \
    X(CmpNe)                                                            \
    X(Ld)                                                               \
    X(Ldf)                                                              \
    X(St)                                                               \
    X(Stf)                                                              \
    X(Lfetch)                                                           \
    X(Getf)                                                             \
    X(Setf)                                                             \
    X(Fma)                                                              \
    X(Fadd)                                                             \
    X(Fmul)                                                             \
    X(Fsub)                                                             \
    X(Br)                                                               \
    X(BrCall)                                                           \
    X(BrRet)                                                            \
    X(Halt)                                                             \
    X(BundleSeam)                                                       \
    X(BrLast)                                                           \
    X(CmpLtBrLast)                                                      \
    X(CmpLeBrLast)                                                      \
    X(CmpEqBrLast)                                                      \
    X(CmpNeBrLast)                                                      \
    X(CmpLtBr)                                                          \
    X(CmpLeBr)                                                          \
    X(CmpEqBr)                                                          \
    X(CmpNeBr)                                                          \
    X(AddiLd)                                                           \
    X(ShladdLd)                                                         \
    X(LdAddi)

enum class UopKind : std::uint8_t
{
#define ADORE_SB_ENUM(k) k,
    ADORE_SB_UOP_KINDS(ADORE_SB_ENUM)
#undef ADORE_SB_ENUM
};

constexpr std::size_t numUopKinds = [] {
    std::size_t n = 0;
#define ADORE_SB_COUNT(k) ++n;
    ADORE_SB_UOP_KINDS(ADORE_SB_COUNT)
#undef ADORE_SB_COUNT
    return n;
}();

/**
 * One flattened micro-op.  The decoded instruction is copied in at
 * build time (not pointed to): bundle storage lives in std::vectors
 * that reallocate on append, and a copy both removes that hazard and
 * saves the pointer chase on the hot path.
 */
struct Uop
{
    /** Pre-bound computed-goto label (null in switch-fallback builds). */
    const void *handler = nullptr;
    UopKind kind = UopKind::Nop;
    Insn insn;             ///< decoded instruction, masks predecoded
    Insn insn2;            ///< fused pairs: the second instruction
    Addr insnPc = 0;       ///< bundle addr | slot (DEAR/BTB/predictor pc)
    Addr insnPc2 = 0;      ///< fused pairs: the second instruction's pc
    Addr bundleAddr = 0;   ///< owning (executed) bundle address
    /** BundleSeam: address of the bundle the seam starts (the epilogue
     *  side uses bundleAddr, the prologue side this). */
    Addr bundleAddr2 = 0;
    /** BundleStart/BundleSeam: the started bundle's ifetch line. */
    Addr fetchLine = 0;
    /** Index of the owning bundle's epilogue uop (BundleEnd* or seam);
     *  taken branches and halt jump here, mirroring the interpreter's
     *  per-slot break.  Self-referential in fused-branch bundles, where
     *  the branch carries its own epilogue. */
    std::uint32_t endIdx = 0;
};

/**
 * A superblock: single-entry, multi-exit run of decoded bundles
 * starting at `head`, flattened into micro-ops.  `loopBack` marks the
 * loop form — the last bundle's branch targets the head, and the
 * executor loops to uop[0] in place (after revalidating the span
 * generations) instead of exiting.
 *
 * Validity is region-keyed: `genSum` snapshots
 * CodeImage::spanGeneration(head, spanEnd) at build time, and the block
 * is valid iff that sum is unchanged — at most two region-counter loads
 * for a max-size block.
 */
struct Superblock
{
    Addr head = 0;
    Addr spanEnd = 0;          ///< last stitched bundle's address
    std::uint64_t genSum = 0;  ///< spanGeneration(head, spanEnd) at build
    bool loopBack = false;
    std::uint32_t bundles = 0;
    std::vector<Uop> uops;

    /**
     * Chain links: block exits resolved to another cached block.  A
     * link is followed only after revalidating the target's span
     * generations; `incoming` lists every block holding a link to this
     * one, so invalidation can null those links before the block dies
     * (SuperblockCache::unlinkBlock).  Four entries cover the exits a
     * region can produce (fall-through, loop exit, a couple of side
     * exits); overflow replaces round-robin.
     */
    struct ChainLink
    {
        Addr target = 0;
        Superblock *to = nullptr;
    };
    std::array<ChainLink, 4> chains{};
    std::uint32_t nextChain = 0;
    std::vector<Superblock *> incoming;

    /** @name Promotion-oracle accounting (host-side, run()-maintained)
     *  Simulated instructions retired per run()-level dispatch,
     *  windowed: a block whose excursions (including everything it
     *  chains into) retire too little work per entry is paying more in
     *  dispatch overhead than it saves and gets demoted. */
    /// @{
    std::uint64_t workRetired = 0;
    std::uint32_t windowDispatches = 0;
    /// @}
};

/** Host-side tier accounting (no simulated-timing meaning). */
struct SuperblockStats
{
    std::uint64_t built = 0;        ///< blocks constructed
    std::uint64_t replaced = 0;     ///< blocks evicted by slot reuse
    std::uint64_t invalidated = 0;  ///< stale blocks dropped at lookup
    std::uint64_t dispatches = 0;   ///< run()-loop entries into a block
    std::uint64_t loopTrips = 0;    ///< inline back-edge loops taken
    std::uint64_t chained = 0;      ///< block-to-block direct transitions
    std::uint64_t demoted = 0;      ///< blocks removed by the oracle
    std::uint64_t fusedPairs = 0;   ///< instruction pairs fused at build
};

/**
 * Direct-mapped superblock cache keyed on head bundle address, sized by
 * the same CpuConfig knob as the decoded-bundle cache (they cover the
 * same working set: the bundles of the current hot region).  A lookup
 * whose slot holds a block with a stale span-generation sum drops the
 * block (after unlinking it from the chain graph) and charges the
 * head's churn counter in the promotion table.
 *
 * The promotion table is the profitability oracle's memory: a
 * direct-mapped side table recording, per head, how many times its
 * blocks were invalidated (churn — repeated ADORE repatching of the
 * same region) and whether the head was demoted for retiring too little
 * work per dispatch.  Demotion self-heals when the head's region
 * generation changes (the code is different, so the old judgement is
 * void); churn blacklisting is sticky — generation changes are exactly
 * what it measures.
 */
class SuperblockCache
{
  public:
    /** @p entries must be a power of two (Cpu validates the config).
     *  @p max_invalidations blacklists a head after that many stale
     *  drops (0 disables churn blacklisting). */
    explicit SuperblockCache(std::size_t entries,
                             std::uint32_t max_invalidations)
        : slots_(entries), mask_(entries - 1),
          maxInvalidations_(max_invalidations)
    {
    }

    /** The valid block headed at @p head, or null.  Drops (and
     *  unlinks) a stale occupant, charging its churn counter. */
    Superblock *
    lookup(Addr head, const CodeImage &code)
    {
        std::unique_ptr<Superblock> &slot = slotFor(head);
        if (!slot || slot->head != head)
            return nullptr;
        if (code.spanGeneration(slot->head, slot->spanEnd) !=
            slot->genSum) {
            dropStale(slot);
            return nullptr;
        }
        return slot.get();
    }

    /** Side-effect-free probe (tests): no stale-block eviction. */
    const Superblock *
    probe(Addr head, const CodeImage &code) const
    {
        const std::unique_ptr<Superblock> &slot =
            slots_[static_cast<std::size_t>(head / isa::bundleBytes) &
                   mask_];
        if (slot && slot->head == head &&
            code.spanGeneration(slot->head, slot->spanEnd) ==
                slot->genSum) {
            return slot.get();
        }
        return nullptr;
    }

    void
    insert(std::unique_ptr<Superblock> sb)
    {
        std::unique_ptr<Superblock> &slot = slotFor(sb->head);
        if (slot) {
            unlinkBlock(slot.get());
            ++stats_.replaced;
        }
        slot = std::move(sb);
        ++stats_.built;
    }

    /**
     * Drop @p sb (known stale: an executor chain link whose target
     * failed revalidation).  The caller guarantees @p sb is not the
     * block currently executing.
     */
    void
    invalidateBlock(Superblock *sb)
    {
        std::unique_ptr<Superblock> &slot = slotFor(sb->head);
        if (slot.get() == sb)
            dropStale(slot);
    }

    /**
     * Record a chain link from @p from to @p to (the block whose head
     * is @p target), with reverse bookkeeping for unlink-on-invalidate.
     */
    void
    link(Superblock *from, Addr target, Superblock *to)
    {
        Superblock::ChainLink &l =
            from->chains[from->nextChain++ % from->chains.size()];
        if (l.to)
            eraseIncoming(l.to, from);
        l.target = target;
        l.to = to;
        to->incoming.push_back(from);
    }

    /**
     * Oracle consult at promotion time: false when the head is
     * blacklisted — demoted at the current region generation, or past
     * the churn limit.  A demoted entry whose region generation moved
     * is cleared (the code changed; re-judge it).
     */
    bool
    promotionAllowed(Addr head, const CodeImage &code)
    {
        PromoteEntry &e = promoteFor(head);
        if (e.head != head)
            return true;
        if (e.demoted) {
            if (code.regionGeneration(head) == e.gen)
                return false;
            e = PromoteEntry{};
            return true;
        }
        return maxInvalidations_ == 0 ||
               e.invalidations < maxInvalidations_;
    }

    /**
     * Oracle verdict: @p sb retires too little work per dispatch.
     * Blacklist its head at the current region generation and remove
     * the block.  The caller must not touch @p sb afterwards.
     */
    void
    demote(Superblock *sb, const CodeImage &code)
    {
        PromoteEntry &e = promoteFor(sb->head);
        if (e.head != sb->head)
            e = PromoteEntry{};
        e.head = sb->head;
        e.demoted = true;
        e.gen = code.regionGeneration(sb->head);
        unlinkBlock(sb);
        slotFor(sb->head).reset();
        ++stats_.demoted;
    }

    std::size_t entries() const { return slots_.size(); }

    SuperblockStats &stats() { return stats_; }
    const SuperblockStats &stats() const { return stats_; }

  private:
    struct PromoteEntry
    {
        Addr head = ~Addr{0};
        std::uint64_t gen = 0;          ///< region gen when demoted
        std::uint32_t invalidations = 0;
        bool demoted = false;
    };

    std::unique_ptr<Superblock> &
    slotFor(Addr head)
    {
        return slots_[static_cast<std::size_t>(head / isa::bundleBytes) &
                      mask_];
    }

    PromoteEntry &
    promoteFor(Addr head)
    {
        return promote_[static_cast<std::size_t>(head / isa::bundleBytes) %
                        promote_.size()];
    }

    void
    eraseIncoming(Superblock *to, Superblock *from)
    {
        for (std::size_t i = 0; i < to->incoming.size(); ++i) {
            if (to->incoming[i] == from) {
                to->incoming[i] = to->incoming.back();
                to->incoming.pop_back();
                return;
            }
        }
    }

    /**
     * Detach @p b from the chain graph in both directions: forget its
     * outgoing links (erasing it from each target's incoming list) and
     * null every link pointing at it.  Every path that destroys a block
     * goes through here first, so chain pointers never dangle.
     */
    void
    unlinkBlock(Superblock *b)
    {
        for (Superblock::ChainLink &l : b->chains) {
            if (l.to) {
                eraseIncoming(l.to, b);
                l = Superblock::ChainLink{};
            }
        }
        for (Superblock *p : b->incoming) {
            for (Superblock::ChainLink &l : p->chains) {
                if (l.to == b)
                    l = Superblock::ChainLink{};
            }
        }
        b->incoming.clear();
    }

    void
    dropStale(std::unique_ptr<Superblock> &slot)
    {
        PromoteEntry &e = promoteFor(slot->head);
        if (e.head != slot->head) {
            e = PromoteEntry{};
            e.head = slot->head;
        }
        ++e.invalidations;
        unlinkBlock(slot.get());
        slot.reset();
        ++stats_.invalidated;
    }

    std::vector<std::unique_ptr<Superblock>> slots_;
    std::size_t mask_;
    std::uint32_t maxInvalidations_;
    std::array<PromoteEntry, 64> promote_{};
    SuperblockStats stats_;
};

} // namespace adore

#endif // ADORE_CPU_EXEC_TIER_HH
