/**
 * @file
 * Direct-threaded superblock execution tier (DESIGN.md §12).
 *
 * The interpreter's step() pays per-bundle dispatch overhead — the
 * decoded-bundle-cache probe, the per-slot opcode switch, and the call
 * frames around execBundle — on every bundle, even inside a loop that
 * executes the same few bundles millions of times.  This tier stitches
 * the decoded bundles of a hot straight-line/loop region into one
 * flattened micro-op array ("superblock"): each micro-op carries a copy
 * of its decoded instruction, its precomputed addresses, and a
 * pre-bound handler pointer, so Cpu::execSuperblock can run the region
 * with computed-goto (labels-as-values) dispatch — one indirect jump
 * per micro-op — falling back to a portable switch loop on compilers
 * without the GNU extension.
 *
 * The tier is a pure host optimization: every handler performs exactly
 * the simulated work of the interpreter path (ifetch timing, issue
 * limits, stall-on-use waits, split-issue charges, DEAR/BTB reporting,
 * the PMU event watermark), so metrics, sampler accounting, and
 * decision-event streams are bit-identical with the tier on or off
 * (tests/test_tier_toggle.cc).
 *
 * Invalidation reuses the CodeImage version machinery: a superblock
 * records the image version it was built from, and any append, trace
 * allocation, patch, or unpatch bumps the version, so stale blocks die
 * at the next lookup exactly as decoded-bundle-cache entries do.  A
 * block is never executing while the image mutates: all runtime image
 * mutations happen inside periodic hooks, and the executor exits the
 * block whenever the event watermark fires.
 */

#ifndef ADORE_CPU_EXEC_TIER_HH
#define ADORE_CPU_EXEC_TIER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "isa/bundle.hh"
#include "isa/insn.hh"

namespace adore
{

/**
 * Micro-op kinds, one per executor handler.  The X-macro keeps the
 * enum, the computed-goto label table, and the switch fallback in sync
 * (exec_tier.cc builds all three from this list; order is load-bearing).
 *
 * Structural kinds frame each bundle: BundleStart replays step()'s
 * prologue (ifetch, issue limit, written-mask reset) for the region's
 * first bundle, BundleSeam replays the epilogue (split-issue charge,
 * pc update, event watermark) plus the next bundle's prologue at every
 * interior boundary, and BundleEndLast replays the final epilogue and
 * decides whether to loop back to the head or leave the block.
 * Instruction kinds map 1:1 onto opcodes (LdS shares Ld: identical
 * execution semantics).
 *
 * Fused branch kinds exist purely to cut dispatches on the hot path;
 * each is the exact concatenation of its constituent handlers, so they
 * change host cost only, never simulated behaviour:
 *  - BrLast        = a final-slot Br in the region's last bundle +
 *                    BundleEndLast (the loop back-edge)
 *  - Cmp**BrLast   = a compare immediately preceding that Br in the
 *                    same bundle + BrLast (the canonical `cmp ; br`
 *                    loop tail)
 */
#define ADORE_SB_UOP_KINDS(X)                                           \
    X(BundleStart)                                                      \
    X(BundleEndLast)                                                    \
    X(Nop)                                                              \
    X(Add)                                                              \
    X(Sub)                                                              \
    X(Addi)                                                             \
    X(Shladd)                                                           \
    X(Mov)                                                              \
    X(Movi)                                                             \
    X(And)                                                              \
    X(Or)                                                               \
    X(Xor)                                                              \
    X(Shl)                                                              \
    X(Shr)                                                              \
    X(CmpLt)                                                            \
    X(CmpLe)                                                            \
    X(CmpEq)                                                            \
    X(CmpNe)                                                            \
    X(Ld)                                                               \
    X(Ldf)                                                              \
    X(St)                                                               \
    X(Stf)                                                              \
    X(Lfetch)                                                           \
    X(Getf)                                                             \
    X(Setf)                                                             \
    X(Fma)                                                              \
    X(Fadd)                                                             \
    X(Fmul)                                                             \
    X(Fsub)                                                             \
    X(Br)                                                               \
    X(BrCall)                                                           \
    X(BrRet)                                                            \
    X(Halt)                                                             \
    X(BundleSeam)                                                       \
    X(BrLast)                                                           \
    X(CmpLtBrLast)                                                      \
    X(CmpLeBrLast)                                                      \
    X(CmpEqBrLast)                                                      \
    X(CmpNeBrLast)

enum class UopKind : std::uint8_t
{
#define ADORE_SB_ENUM(k) k,
    ADORE_SB_UOP_KINDS(ADORE_SB_ENUM)
#undef ADORE_SB_ENUM
};

constexpr std::size_t numUopKinds = [] {
    std::size_t n = 0;
#define ADORE_SB_COUNT(k) ++n;
    ADORE_SB_UOP_KINDS(ADORE_SB_COUNT)
#undef ADORE_SB_COUNT
    return n;
}();

/**
 * One flattened micro-op.  The decoded instruction is copied in at
 * build time (not pointed to): bundle storage lives in std::vectors
 * that reallocate on append, and a copy both removes that hazard and
 * saves the pointer chase on the hot path.
 */
struct Uop
{
    /** Pre-bound computed-goto label (null in switch-fallback builds). */
    const void *handler = nullptr;
    UopKind kind = UopKind::Nop;
    Insn insn;             ///< decoded instruction, masks predecoded
    Insn insn2;            ///< Cmp**BrLast: the fused branch
    Addr insnPc = 0;       ///< bundle addr | slot (DEAR/BTB/predictor pc)
    Addr insnPc2 = 0;      ///< Cmp**BrLast: the fused branch's pc
    Addr bundleAddr = 0;   ///< owning (executed) bundle address
    /** BundleSeam: address of the bundle the seam starts (the epilogue
     *  side uses bundleAddr, the prologue side this). */
    Addr bundleAddr2 = 0;
    /** BundleStart/BundleSeam: the started bundle's ifetch line. */
    Addr fetchLine = 0;
    /** Index of the owning bundle's epilogue uop (BundleEnd* or seam);
     *  taken branches and halt jump here, mirroring the interpreter's
     *  per-slot break.  Self-referential in fused-branch bundles, where
     *  the branch carries its own epilogue. */
    std::uint32_t endIdx = 0;
};

/**
 * A superblock: single-entry, multi-exit run of decoded bundles
 * starting at `head`, flattened into micro-ops.  `loopBack` marks the
 * loop form — the last bundle's branch targets the head, and the
 * executor loops to uop[0] in place (after revalidating the image
 * version) instead of exiting.
 */
struct Superblock
{
    Addr head = 0;
    std::uint64_t version = 0;     ///< CodeImage::version() at build
    std::uint64_t patchEpoch = 0;  ///< CodeImage::patchEpoch() at build
    bool loopBack = false;
    std::uint32_t bundles = 0;
    std::vector<Uop> uops;
};

/** Host-side tier accounting (no simulated-timing meaning). */
struct SuperblockStats
{
    std::uint64_t built = 0;        ///< blocks constructed
    std::uint64_t replaced = 0;     ///< blocks evicted by slot reuse
    std::uint64_t invalidated = 0;  ///< stale blocks dropped at lookup
    std::uint64_t dispatches = 0;   ///< run()-loop entries into a block
    std::uint64_t loopTrips = 0;    ///< inline back-edge loops taken
};

/**
 * Direct-mapped superblock cache keyed on head bundle address, sized by
 * the same CpuConfig knob as the decoded-bundle cache (they cover the
 * same working set: the bundles of the current hot region).  A lookup
 * whose slot holds a block built from an older image version drops the
 * block — the exact invalidation rule of the decoded-bundle cache.
 */
class SuperblockCache
{
  public:
    /** @p entries must be a power of two (Cpu validates the config). */
    explicit SuperblockCache(std::size_t entries)
        : slots_(entries), mask_(entries - 1)
    {
    }

    Superblock *
    lookup(Addr head, std::uint64_t version)
    {
        std::unique_ptr<Superblock> &slot = slotFor(head);
        if (!slot || slot->head != head)
            return nullptr;
        if (slot->version != version) {
            slot.reset();
            ++stats_.invalidated;
            return nullptr;
        }
        return slot.get();
    }

    /** Side-effect-free probe (tests): no stale-block eviction. */
    const Superblock *
    probe(Addr head, std::uint64_t version) const
    {
        const std::unique_ptr<Superblock> &slot =
            slots_[static_cast<std::size_t>(head / isa::bundleBytes) &
                   mask_];
        if (slot && slot->head == head && slot->version == version)
            return slot.get();
        return nullptr;
    }

    void
    insert(std::unique_ptr<Superblock> sb)
    {
        std::unique_ptr<Superblock> &slot = slotFor(sb->head);
        if (slot)
            ++stats_.replaced;
        slot = std::move(sb);
        ++stats_.built;
    }

    std::size_t entries() const { return slots_.size(); }

    SuperblockStats &stats() { return stats_; }
    const SuperblockStats &stats() const { return stats_; }

  private:
    std::unique_ptr<Superblock> &
    slotFor(Addr head)
    {
        return slots_[static_cast<std::size_t>(head / isa::bundleBytes) &
                      mask_];
    }

    std::vector<std::unique_ptr<Superblock>> slots_;
    std::size_t mask_;
    SuperblockStats stats_;
};

} // namespace adore

#endif // ADORE_CPU_EXEC_TIER_HH
