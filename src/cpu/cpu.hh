/**
 * @file
 * The simulated Itanium-2-class CPU: an in-order, stall-on-use timing
 * interpreter over the mini-IA64 ISA.
 *
 * Timing model:
 *  - up to two bundles issue per cycle (the paper's "two bundles per
 *    cycle" constraint, Section 1.3);
 *  - per-register ready times implement stall-on-use: a load issues
 *    without stalling, and a later reader of its destination stalls the
 *    pipeline until the cache fill completes;
 *  - an instruction that reads a register written earlier in the *same*
 *    bundle pays a one-cycle split-issue penalty (the stop-bit cost);
 *  - taken branches pay a one-cycle redirect bubble; direction
 *    mispredicts pay a flush penalty;
 *  - instruction fetch goes through the L1I; trace-pool execution
 *    therefore has real I-cache effects (gcc's loss / vortex's gain).
 *
 * PMU integration: every retired load reports its latency to the DEAR;
 * every retired branch is recorded in the BTB; a Sampler (when attached)
 * snapshots the n-tuple every R cycles and charges sampling overhead.
 * Periodic hooks let the ADORE runtime poll "every 100 ms" of simulated
 * time without a host thread.
 */

#ifndef ADORE_CPU_CPU_HH
#define ADORE_CPU_CPU_HH

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cpu/branch_predictor.hh"
#include "isa/bundle.hh"
#include "mem/hierarchy.hh"
#include "mem/main_memory.hh"
#include "pmu/pmu.hh"
#include "pmu/sampler.hh"
#include "program/code_image.hh"

namespace adore
{

class SuperblockCache;
struct Superblock;
struct SuperblockStats;

/**
 * Execution tier (DESIGN.md §12).  Interpreter runs every bundle
 * through step(); DirectThreaded additionally promotes hot regions into
 * flattened superblocks executed with pre-bound handler dispatch.  Both
 * tiers produce bit-identical simulated results (metrics, sampler
 * accounting, decision-event streams — tests/test_tier_toggle.cc), so
 * DirectThreaded is the default; Interpreter remains the oracle the
 * toggle tests compare against.
 */
enum class ExecTier : std::uint8_t { Interpreter, DirectThreaded };

/** Stable tier name for reports/metrics ("interpreter" / ...). */
const char *execTierName(ExecTier tier);

struct CpuConfig
{
    int bundlesPerCycle = 2;
    std::uint32_t takenBranchBubble = 1;
    std::uint32_t mispredictPenalty = 6;
    std::uint32_t fpOpLatency = 4;
    std::uint32_t dearLatencyThreshold = 8;
    ExecTier execTier = ExecTier::DirectThreaded;
    /**
     * Decoded-bundle cache entries (power of two).  Must cover the
     * bundle working set of the hot region or the direct-mapped
     * training counters thrash and superblocks never form: 4 entries
     * only ever promoted loops of up to 4 bundles, which starved
     * ADORE-patched pool traces (init + prefetch bundles push the hot
     * loop past 4).  64 matches superblockMaxBundles.  The superblock
     * cache shares this sizing policy (same knob, same keying) since
     * both track the bundles of the current hot region.  Host-only:
     * sizing cannot affect simulated metrics.
     */
    std::uint32_t bundleCacheEntries = 64;
    /**
     * Executions of one bundle address (at an unchanged region cache
     * key) that trigger superblock formation: the threshold-th
     * execution builds.  0 disables formation entirely.
     */
    std::uint32_t superblockHotThreshold = 16;
    /** Maximum bundles stitched into one superblock. */
    std::uint32_t superblockMaxBundles = 64;
    /**
     * Build-time peephole fusion of adjacent uop pairs (compare+branch,
     * address-gen+load, load+use) and the loop-tail patterns into
     * combined handlers.  Pure host optimization — the fused handlers
     * are exact concatenations of the unfused ones, pinned bit-identical
     * across the registry by tests/test_tier_toggle.cc.
     */
    bool superblockFusion = true;
    /**
     * Also fuse the load-carrying pairs (address-gen+load, load+use)
     * when superblockFusion is on.  Default-off: on the reference host
     * executing the combined load handlers measures as a net host-side
     * loss (mcf_o2 84.3 -> 76.7 sim-MIPS), while compare+branch and
     * loop-tail fusion measure as a win.  The handlers stay built and
     * bit-identity-pinned either way (the tier-toggle sweep's fusion-on
     * variants enable every pattern).
     */
    bool superblockFuseLoads = false;
    /**
     * Chain block exits straight into the target block's uops instead
     * of returning to the run() dispatch loop, keeping the hoisted
     * executor state live across the transition.  Host-only.
     */
    bool superblockChaining = true;
    /**
     * Promotion profitability oracle: every this-many run()-level
     * dispatches of a block, demote it if it averaged fewer than
     * superblockMinRetiredPerDispatch retired instructions per dispatch
     * (the block's excursions are too short to amortize entry costs).
     * 0 disables demotion.
     */
    std::uint32_t superblockDemoteWindow = 64;
    /** Demotion threshold: see superblockDemoteWindow. */
    std::uint32_t superblockMinRetiredPerDispatch = 8;
    /**
     * Churn blacklist: a head whose blocks get invalidated this many
     * times (ADORE repatching the same region over and over) is barred
     * from further promotion.  0 disables.
     */
    std::uint32_t superblockMaxInvalidations = 64;
};

class Cpu
{
  public:
    Cpu(CodeImage &code, CacheHierarchy &caches, MainMemory &memory,
        const CpuConfig &config = CpuConfig());
    ~Cpu();  // out of line: SuperblockCache is incomplete here

    /// @name Architectural state
    /// @{
    std::int64_t intReg(int i) const { return r_[static_cast<size_t>(i)]; }
    void setIntReg(int i, std::int64_t v);
    double fpReg(int i) const { return f_[static_cast<size_t>(i)]; }
    void setFpReg(int i, double v);
    bool predReg(int i) const { return p_[static_cast<size_t>(i)]; }
    void setPredReg(int i, bool v);
    Addr pc() const { return pc_; }
    void setPc(Addr pc) { pc_ = pc; }
    /// @}

    /** Attach the PMU sampler (nullptr detaches). */
    void
    setSampler(Sampler *sampler)
    {
        sampler_ = sampler;
        recomputeNextEvent();
    }

    /**
     * Recompute the event watermark after an external change to the
     * attached sampler's schedule (enable/disable or interval change)
     * made outside a periodic hook.  run() and every in-step event
     * service refresh the watermark themselves; direct step() drivers
     * that reconfigure a live sampler must call this once afterwards.
     */
    void noteEventSourcesChanged() { recomputeNextEvent(); }

    /**
     * Register a hook invoked whenever the cycle counter crosses a
     * multiple of @p period (the ADORE optimizer-thread poll).
     */
    using PeriodicHook = std::function<void(Cycle)>;
    void addPeriodicHook(Cycle period, PeriodicHook hook);

    /** Charge overhead cycles to the main thread (signal handlers...). */
    void chargeCycles(Cycle n) { cycle_ += n; }

    /**
     * Flush the stat deltas deferred by the load line buffer into the
     * hierarchy/L1D counters.  run() flushes on exit and step() flushes
     * before servicing sampler/hook events, so cache statistics read
     * after run() — or from inside a periodic hook — are always exact.
     * Drivers that call step() directly must call this once before
     * reading cache statistics mid-run.
     */
    void
    syncDeferredMemStats()
    {
        if (deferredLoadLineHits_) {
            caches_.addDeferredLoadLineHits(deferredLoadLineHits_);
            deferredLoadLineHits_ = 0;
        }
        if (deferredStoreLineHits_) {
            caches_.addDeferredStoreLineHits(deferredStoreLineHits_);
            deferredStoreLineHits_ = 0;
        }
        if (deferredFpLoadHits_) {
            caches_.addDeferredFpLoadHits(deferredFpLoadHits_);
            deferredFpLoadHits_ = 0;
        }
        if (deferredFpStoreHits_) {
            caches_.addDeferredFpStoreHits(deferredFpStoreHits_);
            deferredFpStoreHits_ = 0;
        }
    }

    struct RunResult
    {
        bool halted = false;
        Cycle cycles = 0;
        std::uint64_t retired = 0;
    };

    /**
     * Run until Halt retires or @p max_cycles elapses.
     */
    RunResult run(Cycle max_cycles);

    /** Execute one bundle. @return false once halted. */
    bool step();

    /**
     * Cooperative external stop (DESIGN.md §15): ask run() to return at
     * the next loop-top check.  Safe to call from another thread (the
     * daemon's deadline monitor); the flag is sticky until
     * clearStopRequest().  Stop latency is one superblock excursion at
     * worst, so callers wanting a bound register a periodic hook that
     * forwards their cancel flag here (Experiment's RunConfig::cancelFlag
     * does exactly that) — hooks force event exits at hook cadence.
     */
    void
    requestStop()
    {
        stopRequested_.store(true, std::memory_order_relaxed);
    }

    bool
    stopRequested() const
    {
        return stopRequested_.load(std::memory_order_relaxed);
    }

    void
    clearStopRequest()
    {
        stopRequested_.store(false, std::memory_order_relaxed);
    }

    bool halted() const { return halted_; }
    Cycle cycle() const { return cycle_; }

    const PerfCounters &counters() const { return counters_; }
    Dear &dear() { return dear_; }
    BranchTraceBuffer &btb() { return btb_; }
    CacheHierarchy &caches() { return caches_; }
    MainMemory &memory() { return memory_; }
    CodeImage &code() { return code_; }
    const CpuConfig &config() const { return config_; }

    /// @name Superblock execution tier (exec_tier.cc, DESIGN.md §12)
    /// @{
    /** Host-side tier accounting (builds, evictions, dispatches). */
    const SuperblockStats &superblockStats() const;
    /**
     * The cached superblock headed at @p head, valid against the
     * current image version, or null.  Side-effect-free (tests).
     */
    const Superblock *superblockAt(Addr head) const;
    /// @}

  private:
    void execBundle(const Bundle &bundle, Addr bundle_addr);
    void execInsn(const Insn &insn, Addr insn_pc, Addr bundle_addr);
    void execBranch(const Insn &insn, Addr insn_pc, Addr bundle_addr);

    /**
     * Build a superblock headed at @p head from the current image and
     * install it in the superblock cache.  Called from step() when a
     * decoded-bundle-cache entry crosses superblockHotThreshold.
     */
    void buildSuperblockAt(Addr head);

    /**
     * Execute @p sb until a side exit, the back-edge failing, an event
     * service, the cycle budget, or halt.  Defined in exec_tier.cc with
     * computed-goto dispatch (portable switch fallback).  Calling with
     * sb == nullptr performs no execution and returns the handler label
     * table (null in switch-fallback builds) — the builder's one way to
     * reach the function-local label addresses.
     */
    const void *const *execSuperblock(Superblock *sb, Cycle max_cycles);

    /** Stall until @p ready_at; resets the issue counter when stalling. */
    void
    waitUntil(Cycle ready_at)
    {
        if (ready_at > cycle_) {
            cycle_ = ready_at;
            issuedThisCycle_ = 0;
        }
    }

    /**
     * Stall until every source register of @p insn is ready.  The
     * predecoded operand masks (Insn::predecode) replace a per-opcode
     * switch: one overlap test against the written-this-bundle masks for
     * the split-issue charge, then a ready-time walk over the set bits.
     * Defined in-class so the per-instruction hot path inlines it.
     */
    void
    waitForSources(const Insn &insn)
    {
        std::uint32_t im = insn.srcIntMask;
        std::uint32_t fm = insn.srcFpMask;
        if ((im | fm) == 0)
            return;

        if (intWrittenMask_ & im)
            splitIssueCharged_ = true;
        // Single integer source (the most common shape: loads, moves,
        // addi) needs no max-reduction loop.
        if (fm == 0 && (im & (im - 1)) == 0) {
            waitUntil(rReady_[static_cast<unsigned>(std::countr_zero(im))]);
            return;
        }

        Cycle ready = 0;
        while (im) {
            ready = std::max(
                ready, rReady_[static_cast<unsigned>(std::countr_zero(im))]);
            im &= im - 1;
        }
        if (fpWrittenMask_ & fm)
            splitIssueCharged_ = true;
        while (fm) {
            ready = std::max(
                ready, fReady_[static_cast<unsigned>(std::countr_zero(fm))]);
            fm &= fm - 1;
        }
        waitUntil(ready);
    }

    /**
     * Register writeback with ready-time and written-this-bundle mask
     * maintenance.  The single definition both execInsn and the
     * superblock handlers (exec_tier.cc) use, so the two execution
     * tiers cannot drift on writeback semantics.  r0/f0 are hardwired
     * zero and never written.
     */
    void
    writeIntReg(std::uint8_t rd, std::int64_t v, Cycle ready)
    {
        if (rd == 0)
            return;
        r_[rd] = v;
        rReady_[rd] = ready;
        intWrittenMask_ |= 1u << rd;
    }

    void
    writeFpReg(std::uint8_t fd, double v, Cycle ready)
    {
        if (fd == 0)
            return;
        f_[fd] = v;
        fReady_[fd] = ready;
        fpWrittenMask_ |= static_cast<std::uint16_t>(1u << fd);
    }

    /**
     * Integer-side demand load through the load line buffer.
     *
     * The buffer is a small direct-mapped cache keyed on (line address,
     * hierarchy generation): an entry proves its line was resident in
     * L1D at the remembered index when armed.  A load whose line is
     * still resident (generation match, or tag revalidation after the
     * generation moved) and whose fill has completed resolves to
     * {L1D hit latency, MemLevel::L1} without walking the hierarchy —
     * exactly what CacheHierarchy::load() would return.  The LRU touch
     * happens inline (identical useClock sequence to the slow path);
     * the {loads, accesses, hits} increments are deferred into
     * deferredLoadLineHits_ and flushed by syncDeferredMemStats().
     * Defined in-class so the per-load hot path inlines it.
     */
    MemAccessResult
    loadInt(Addr ea, Addr pc = 0)
    {
        if (memFastPath_) {
            Addr line = ea >> l1dLineShift_;
            LoadLineEntry &e =
                loadLineBuf_[static_cast<std::size_t>(line) &
                             (loadLineBuf_.size() - 1)];
            if (e.line == line &&
                (e.generation == caches_.generation() ||
                 l1dFast_->residentAt(e.index, line)) &&
                l1dFast_->readyAtOf(e.index) <= cycle_) {
                e.generation = caches_.generation();
                l1dFast_->touch(e.index);
                ++deferredLoadLineHits_;
                return {l1dHitLatency_, MemLevel::L1};
            }
            // Likely a simulated miss: overlap the host cache misses of
            // the walk (set metadata) and of the upcoming data read.
            caches_.hostPrefetchWalk(ea);
            memory_.hostPrefetch(ea);
            MemAccessResult res = caches_.load(ea, cycle_, false, pc);
            // Arm the buffer: the slow path always leaves the line
            // resident in L1D (hit, or miss + fill), and just made its
            // way the set's MRU, so this lookup is one probe.
            std::uint32_t idx = l1dFast_->indexOf(ea);
            if (idx != Cache::npos)
                e = {line, idx, caches_.generation()};
            return res;
        }
        return caches_.load(ea, cycle_, false, pc);
    }

    /**
     * Integer-side store through the same line buffer.  A store whose
     * line is resident and ready in L1D is exactly the slow path's
     * early-return hit: one {access, hit} on L1D plus the LRU touch and
     * the hierarchy's store count, nothing below L1D.  The touch happens
     * inline; the counters are deferred into deferredStoreLineHits_.
     */
    void
    storeInt(Addr ea)
    {
        if (memFastPath_) {
            Addr line = ea >> l1dLineShift_;
            LoadLineEntry &e =
                loadLineBuf_[static_cast<std::size_t>(line) &
                             (loadLineBuf_.size() - 1)];
            if (e.line == line &&
                (e.generation == caches_.generation() ||
                 l1dFast_->residentAt(e.index, line)) &&
                l1dFast_->readyAtOf(e.index) <= cycle_) {
                e.generation = caches_.generation();
                l1dFast_->touch(e.index);
                ++deferredStoreLineHits_;
                return;
            }
            caches_.hostPrefetchWalk(ea);
            caches_.store(ea, cycle_, false);
            // The slow path always leaves the line resident in L1D
            // (hit, or miss + write-allocate fill).
            std::uint32_t idx = l1dFast_->indexOf(ea);
            if (idx != Cache::npos)
                e = {line, idx, caches_.generation()};
            return;
        }
        caches_.store(ea, cycle_, false);
    }

    /**
     * FP-side demand load through the FP line buffer over L2.  FP
     * accesses bypass L1D (Itanium 2), so a ready L2 hit is their whole
     * hierarchy walk: the slow path would return {L2 hit latency,
     * MemLevel::L2} after one {access, hit} on L2 plus the LRU touch and
     * the load count.  Same generation/tag-revalidation scheme as the
     * integer buffer, keyed on the L2 line number and L2 generation.
     */
    MemAccessResult
    loadFp(Addr ea, Addr pc = 0)
    {
        if (memFastPath_) {
            Addr line = ea >> l2LineShift_;
            LoadLineEntry &e =
                fpLineBuf_[static_cast<std::size_t>(line) &
                           (fpLineBuf_.size() - 1)];
            if (e.line == line &&
                (e.generation == l2Fast_->generation() ||
                 l2Fast_->residentAt(e.index, line)) &&
                l2Fast_->readyAtOf(e.index) <= cycle_) {
                e.generation = l2Fast_->generation();
                l2Fast_->touch(e.index);
                ++deferredFpLoadHits_;
                return {l2HitLatency_, MemLevel::L2};
            }
            MemAccessResult res = caches_.load(ea, cycle_, true, pc);
            // Hit or miss, the slow path leaves the line resident in L2.
            std::uint32_t idx = l2Fast_->indexOf(ea);
            if (idx != Cache::npos)
                e = {line, idx, l2Fast_->generation()};
            return res;
        }
        return caches_.load(ea, cycle_, true, pc);
    }

    /** FP-side store: same L2 short-circuit as loadFp(). */
    void
    storeFp(Addr ea)
    {
        if (memFastPath_) {
            Addr line = ea >> l2LineShift_;
            LoadLineEntry &e =
                fpLineBuf_[static_cast<std::size_t>(line) &
                           (fpLineBuf_.size() - 1)];
            if (e.line == line &&
                (e.generation == l2Fast_->generation() ||
                 l2Fast_->residentAt(e.index, line)) &&
                l2Fast_->readyAtOf(e.index) <= cycle_) {
                e.generation = l2Fast_->generation();
                l2Fast_->touch(e.index);
                ++deferredFpStoreHits_;
                return;
            }
            caches_.store(ea, cycle_, true);
            std::uint32_t idx = l2Fast_->indexOf(ea);
            if (idx != Cache::npos)
                e = {line, idx, l2Fast_->generation()};
            return;
        }
        caches_.store(ea, cycle_, true);
    }

    void runHooks();
    void maybeSample(Addr bundle_addr);

    /**
     * Recompute nextEventAt_: the earliest cycle at which the sampler or
     * any periodic hook can fire.  The per-step fast path does a single
     * comparison against it instead of polling every event source.
     */
    void recomputeNextEvent();

    CodeImage &code_;
    CacheHierarchy &caches_;
    MainMemory &memory_;
    CpuConfig config_;

    // Architectural state.
    std::array<std::int64_t, isa::numIntRegs> r_{};
    std::array<double, isa::numFpRegs> f_{};
    std::array<bool, isa::numPredRegs> p_{};
    std::array<Addr, isa::numBranchRegs> b_{};
    Addr pc_ = CodeImage::textBase;

    // Timing state.
    std::array<Cycle, isa::numIntRegs> rReady_{};
    std::array<Cycle, isa::numFpRegs> fReady_{};
    Cycle cycle_ = 0;
    int issuedThisCycle_ = 0;
    std::uint32_t intWrittenMask_ = 0;  ///< regs written in current bundle
    std::uint16_t fpWrittenMask_ = 0;
    bool splitIssueCharged_ = false;
    Addr nextPc_ = 0;
    bool branchTaken_ = false;
    bool halted_ = false;
    /** Cooperative run()-loop stop flag (requestStop). Relaxed order is
     *  enough: the requester never reads simulation state back, and the
     *  joining path that does (the daemon worker) synchronizes through
     *  its own job-state mutex. */
    std::atomic<bool> stopRequested_{false};

    // Interpreter fast-path state (pure caches: no timing-model effect).
    // All of it is gated on memFastPath_ (HierarchyConfig::fastPath) so
    // the toggle-and-compare test can run the reference paths instead.
    Addr ifetchLineMask_ = 0;          ///< ~(L1I line size - 1)
    Addr lastIfetchLine_ = ~Addr{0};   ///< line of the previous ifetch
    Cycle lastIfetchReadyAt_ = 0;      ///< when that line's fill completes
    /**
     * Load line buffer over L1D (see loadInt()).  Thirty-two
     * direct-mapped entries cover the hot data lines of a loop body —
     * the chased node's fields plus a few streamed side arrays — with
     * few conflicts between unrelated line numbers.
     */
    struct LoadLineEntry
    {
        Addr line = ~Addr{0};          ///< full L1D line number
        std::uint32_t index = 0;       ///< line index in the L1D SoA
        std::uint64_t generation = ~std::uint64_t{0};
    };
    std::array<LoadLineEntry, 32> loadLineBuf_{};
    /**
     * FP line buffer over L2 (see loadFp()).  FP accesses bypass L1D, so
     * a ready L2 hit resolves the whole walk; eight entries cover the
     * streamed FP arrays of a loop body.
     */
    std::array<LoadLineEntry, 8> fpLineBuf_{};
    std::uint64_t deferredLoadLineHits_ = 0;
    std::uint64_t deferredStoreLineHits_ = 0;
    std::uint64_t deferredFpLoadHits_ = 0;
    std::uint64_t deferredFpStoreHits_ = 0;
    Cache *l1dFast_;                   ///< &caches_.l1dFast()
    Cache *l2Fast_;                    ///< &caches_.l2Fast()
    bool memFastPath_;                 ///< HierarchyConfig::fastPath
    bool hwpfValueObserve_;            ///< hw pointer-chase hook armed
    std::uint32_t l1dHitLatency_;
    std::uint32_t l2HitLatency_;
    std::uint32_t l1dLineShift_;
    std::uint32_t l2LineShift_;
    /**
     * Small direct-mapped decoded-bundle cache keyed on (address,
     * CodeImage::cacheKey).  CpuConfig::bundleCacheEntries sizes it;
     * the default four entries cover the bundle working set of tight
     * loops (a one-entry cache thrashes the moment a loop spans two
     * bundles).  The region-keyed cacheKey means only mutations
     * touching an entry's own region (or reallocating its owning
     * segment) invalidate it — an ADORE patch elsewhere leaves the
     * entry, and its hotness training, intact.  The hit counter is the
     * execution tier's hotness signal: when an entry's hits reach
     * superblockHotThreshold, the address is superblock-worthy.
     */
    struct BundleCacheEntry
    {
        Addr addr = ~Addr{0};
        std::uint64_t key = 0;
        const Bundle *bundle = nullptr;
        std::uint32_t hits = 0;
    };
    std::vector<BundleCacheEntry> bundleCache_;
    std::size_t bundleCacheMask_;
    /** Superblock tier state (exec_tier.hh); sized like bundleCache_. */
    std::unique_ptr<SuperblockCache> superblocks_;
    bool execTierEnabled_;             ///< CpuConfig::execTier
    /** Earliest cycle at which the sampler or a hook can fire. */
    Cycle nextEventAt_ = ~Cycle{0};

    BranchPredictor predictor_;
    PerfCounters counters_;
    Dear dear_;
    BranchTraceBuffer btb_;
    Sampler *sampler_ = nullptr;

    struct Hook
    {
        Cycle period;
        Cycle nextAt;
        PeriodicHook fn;
    };
    std::vector<Hook> hooks_;
};

} // namespace adore

#endif // ADORE_CPU_CPU_HH
