/**
 * @file
 * The simulated Itanium-2-class CPU: an in-order, stall-on-use timing
 * interpreter over the mini-IA64 ISA.
 *
 * Timing model:
 *  - up to two bundles issue per cycle (the paper's "two bundles per
 *    cycle" constraint, Section 1.3);
 *  - per-register ready times implement stall-on-use: a load issues
 *    without stalling, and a later reader of its destination stalls the
 *    pipeline until the cache fill completes;
 *  - an instruction that reads a register written earlier in the *same*
 *    bundle pays a one-cycle split-issue penalty (the stop-bit cost);
 *  - taken branches pay a one-cycle redirect bubble; direction
 *    mispredicts pay a flush penalty;
 *  - instruction fetch goes through the L1I; trace-pool execution
 *    therefore has real I-cache effects (gcc's loss / vortex's gain).
 *
 * PMU integration: every retired load reports its latency to the DEAR;
 * every retired branch is recorded in the BTB; a Sampler (when attached)
 * snapshots the n-tuple every R cycles and charges sampling overhead.
 * Periodic hooks let the ADORE runtime poll "every 100 ms" of simulated
 * time without a host thread.
 */

#ifndef ADORE_CPU_CPU_HH
#define ADORE_CPU_CPU_HH

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <functional>
#include <vector>

#include "cpu/branch_predictor.hh"
#include "isa/bundle.hh"
#include "mem/hierarchy.hh"
#include "mem/main_memory.hh"
#include "pmu/pmu.hh"
#include "pmu/sampler.hh"
#include "program/code_image.hh"

namespace adore
{

struct CpuConfig
{
    int bundlesPerCycle = 2;
    std::uint32_t takenBranchBubble = 1;
    std::uint32_t mispredictPenalty = 6;
    std::uint32_t fpOpLatency = 4;
    std::uint32_t dearLatencyThreshold = 8;
};

class Cpu
{
  public:
    Cpu(CodeImage &code, CacheHierarchy &caches, MainMemory &memory,
        const CpuConfig &config = CpuConfig());

    /// @name Architectural state
    /// @{
    std::int64_t intReg(int i) const { return r_[static_cast<size_t>(i)]; }
    void setIntReg(int i, std::int64_t v);
    double fpReg(int i) const { return f_[static_cast<size_t>(i)]; }
    void setFpReg(int i, double v);
    bool predReg(int i) const { return p_[static_cast<size_t>(i)]; }
    void setPredReg(int i, bool v);
    Addr pc() const { return pc_; }
    void setPc(Addr pc) { pc_ = pc; }
    /// @}

    /** Attach the PMU sampler (nullptr detaches). */
    void
    setSampler(Sampler *sampler)
    {
        sampler_ = sampler;
        recomputeNextEvent();
    }

    /**
     * Recompute the event watermark after an external change to the
     * attached sampler's schedule (enable/disable or interval change)
     * made outside a periodic hook.  run() and every in-step event
     * service refresh the watermark themselves; direct step() drivers
     * that reconfigure a live sampler must call this once afterwards.
     */
    void noteEventSourcesChanged() { recomputeNextEvent(); }

    /**
     * Register a hook invoked whenever the cycle counter crosses a
     * multiple of @p period (the ADORE optimizer-thread poll).
     */
    using PeriodicHook = std::function<void(Cycle)>;
    void addPeriodicHook(Cycle period, PeriodicHook hook);

    /** Charge overhead cycles to the main thread (signal handlers...). */
    void chargeCycles(Cycle n) { cycle_ += n; }

    struct RunResult
    {
        bool halted = false;
        Cycle cycles = 0;
        std::uint64_t retired = 0;
    };

    /**
     * Run until Halt retires or @p max_cycles elapses.
     */
    RunResult run(Cycle max_cycles);

    /** Execute one bundle. @return false once halted. */
    bool step();

    bool halted() const { return halted_; }
    Cycle cycle() const { return cycle_; }

    const PerfCounters &counters() const { return counters_; }
    Dear &dear() { return dear_; }
    BranchTraceBuffer &btb() { return btb_; }
    CacheHierarchy &caches() { return caches_; }
    MainMemory &memory() { return memory_; }
    CodeImage &code() { return code_; }
    const CpuConfig &config() const { return config_; }

  private:
    void execBundle(const Bundle &bundle, Addr bundle_addr);
    void execInsn(const Insn &insn, Addr insn_pc, Addr bundle_addr);
    void execBranch(const Insn &insn, Addr insn_pc, Addr bundle_addr);

    /** Stall until @p ready_at; resets the issue counter when stalling. */
    void
    waitUntil(Cycle ready_at)
    {
        if (ready_at > cycle_) {
            cycle_ = ready_at;
            issuedThisCycle_ = 0;
        }
    }

    /**
     * Stall until every source register of @p insn is ready.  The
     * predecoded operand masks (Insn::predecode) replace a per-opcode
     * switch: one overlap test against the written-this-bundle masks for
     * the split-issue charge, then a ready-time walk over the set bits.
     * Defined in-class so the per-instruction hot path inlines it.
     */
    void
    waitForSources(const Insn &insn)
    {
        std::uint32_t im = insn.srcIntMask;
        std::uint32_t fm = insn.srcFpMask;
        if ((im | fm) == 0)
            return;

        Cycle ready = 0;
        if (intWrittenMask_ & im)
            splitIssueCharged_ = true;
        while (im) {
            ready = std::max(
                ready, rReady_[static_cast<unsigned>(std::countr_zero(im))]);
            im &= im - 1;
        }
        if (fpWrittenMask_ & fm)
            splitIssueCharged_ = true;
        while (fm) {
            ready = std::max(
                ready, fReady_[static_cast<unsigned>(std::countr_zero(fm))]);
            fm &= fm - 1;
        }
        waitUntil(ready);
    }

    void runHooks();
    void maybeSample(Addr bundle_addr);

    /**
     * Recompute nextEventAt_: the earliest cycle at which the sampler or
     * any periodic hook can fire.  The per-step fast path does a single
     * comparison against it instead of polling every event source.
     */
    void recomputeNextEvent();

    CodeImage &code_;
    CacheHierarchy &caches_;
    MainMemory &memory_;
    CpuConfig config_;

    // Architectural state.
    std::array<std::int64_t, isa::numIntRegs> r_{};
    std::array<double, isa::numFpRegs> f_{};
    std::array<bool, isa::numPredRegs> p_{};
    std::array<Addr, isa::numBranchRegs> b_{};
    Addr pc_ = CodeImage::textBase;

    // Timing state.
    std::array<Cycle, isa::numIntRegs> rReady_{};
    std::array<Cycle, isa::numFpRegs> fReady_{};
    Cycle cycle_ = 0;
    int issuedThisCycle_ = 0;
    std::uint32_t intWrittenMask_ = 0;  ///< regs written in current bundle
    std::uint16_t fpWrittenMask_ = 0;
    bool splitIssueCharged_ = false;
    Addr nextPc_ = 0;
    bool branchTaken_ = false;
    bool halted_ = false;

    // Interpreter fast-path state (pure caches: no timing-model effect).
    Addr ifetchLineMask_ = 0;          ///< ~(L1I line size - 1)
    Addr lastIfetchLine_ = ~Addr{0};   ///< line of the previous ifetch
    Cycle lastIfetchReadyAt_ = 0;      ///< when that line's fill completes
    /**
     * Small direct-mapped decoded-bundle cache keyed on (address, image
     * version).  Four entries cover the bundle working set of tight
     * loops (a one-entry cache thrashes the moment a loop spans two
     * bundles).  Any writeBundle/patch/append bumps the image version
     * and thus invalidates every entry.
     */
    struct BundleCacheEntry
    {
        Addr addr = ~Addr{0};
        std::uint64_t version = 0;
        const Bundle *bundle = nullptr;
    };
    std::array<BundleCacheEntry, 4> bundleCache_{};
    /** Earliest cycle at which the sampler or a hook can fire. */
    Cycle nextEventAt_ = ~Cycle{0};

    BranchPredictor predictor_;
    PerfCounters counters_;
    Dear dear_;
    BranchTraceBuffer btb_;
    Sampler *sampler_ = nullptr;

    struct Hook
    {
        Cycle period;
        Cycle nextAt;
        PeriodicHook fn;
    };
    std::vector<Hook> hooks_;
};

} // namespace adore

#endif // ADORE_CPU_CPU_HH
